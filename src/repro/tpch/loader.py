"""Loaders: one generated dataset → every storage engine under test.

Given one :class:`~repro.tpch.datagen.TpchData`, these helpers build

* ``load_smc`` — self-managed collections (row layout by default,
  columnar with ``columnar=True``), wiring every foreign key as a
  reference between collections;
* ``load_managed`` — the managed baselines (``ManagedList`` /
  ``ManagedDictionary`` / ``ManagedBag``) holding plain record objects
  that reference each other directly, like C# objects on the managed
  heap;
* ``load_rdbms`` — the column-store comparator with clustered indexes on
  ``lineitem.shipdate`` and ``orders.orderdate`` (as the paper configures
  SQL Server).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection
from repro.managed.collections_ import ManagedBag, ManagedDictionary, ManagedList
from repro.memory.manager import MemoryManager
from repro.rdbms.table import ColumnTable
from repro.tpch import schema as tpch_schema
from repro.tpch.datagen import TpchData


def load_smc(
    data: TpchData,
    manager: Optional[MemoryManager] = None,
    columnar: bool = False,
    string_dict: bool = True,
    shm: bool = False,
    memory_budget: Optional[int] = None,
) -> Dict[str, Any]:
    """Load the dataset into SMCs; returns name → collection.

    The returned dict also carries the manager under ``"_manager"``.
    ``string_dict=False`` disables dictionary encoding for varstring
    columns (the ``--no-dict`` ablation); ``shm=True`` backs the blocks
    with named shared-memory segments so a process pool can attach them;
    ``memory_budget`` attaches a pager that keeps the block pool under
    the given byte budget (cold blocks spill to a tier file).  All are
    ignored when an explicit *manager* is supplied.
    """
    manager = manager or MemoryManager(
        string_dict=string_dict, shm=shm, memory_budget=memory_budget
    )
    factory = ColumnarCollection if columnar else Collection
    collections: Dict[str, Any] = {
        name: factory(tpch_schema.SCHEMAS[name], manager=manager)
        for name in tpch_schema.TABLES
    }

    regions = {
        row["regionkey"]: collections["region"].add(**row) for row in data.region
    }
    nations = {}
    for row in data.nation:
        nations[row["nationkey"]] = collections["nation"].add(
            region=regions[row["regionkey"]], **row
        )
    suppliers = {}
    for row in data.supplier:
        suppliers[row["suppkey"]] = collections["supplier"].add(
            nation=nations[row["nationkey"]], **row
        )
    customers = {}
    for row in data.customer:
        customers[row["custkey"]] = collections["customer"].add(
            nation=nations[row["nationkey"]], **row
        )
    parts = {}
    for row in data.part:
        parts[row["partkey"]] = collections["part"].add(**row)
    for row in data.partsupp:
        collections["partsupp"].add(
            part=parts[row["partkey"]],
            supplier=suppliers[row["suppkey"]],
            **row,
        )
    orders = {}
    for row in data.orders:
        orders[row["orderkey"]] = collections["orders"].add(
            customer=customers[row["custkey"]], **row
        )
    for row in data.lineitem:
        collections["lineitem"].add(
            order=orders[row["orderkey"]],
            part=parts[row["partkey"]],
            supplier=suppliers[row["suppkey"]],
            **row,
        )

    collections["_manager"] = manager
    return collections


def load_managed(data: TpchData, kind: str = "list") -> Dict[str, Any]:
    """Load the dataset into managed baseline collections.

    ``kind`` selects the collection type for every table: ``"list"``
    (List<T>), ``"dict"`` (ConcurrentDictionary) or ``"bag"``
    (ConcurrentBag).  Records hold direct Python references to their
    foreign-key targets, exactly like managed objects in the paper.
    """
    factories = {
        "list": lambda s, key: ManagedList(s),
        "dict": lambda s, key: ManagedDictionary(s, key=key),
        "bag": lambda s, key: ManagedBag(s),
    }
    if kind not in factories:
        raise ValueError(f"unknown managed collection kind {kind!r}")
    keys = {
        "region": "regionkey",
        "nation": "nationkey",
        "supplier": "suppkey",
        "customer": "custkey",
        "part": "partkey",
        "partsupp": None,
        "orders": "orderkey",
        "lineitem": None,
    }
    collections: Dict[str, Any] = {
        name: factories[kind](tpch_schema.SCHEMAS[name], keys[name])
        for name in tpch_schema.TABLES
    }

    regions = {
        row["regionkey"]: collections["region"].add(**row) for row in data.region
    }
    nations = {}
    for row in data.nation:
        nations[row["nationkey"]] = collections["nation"].add(
            region=regions[row["regionkey"]], **row
        )
    suppliers = {}
    for row in data.supplier:
        suppliers[row["suppkey"]] = collections["supplier"].add(
            nation=nations[row["nationkey"]], **row
        )
    customers = {}
    for row in data.customer:
        customers[row["custkey"]] = collections["customer"].add(
            nation=nations[row["nationkey"]], **row
        )
    parts = {row["partkey"]: collections["part"].add(**row) for row in data.part}
    for row in data.partsupp:
        collections["partsupp"].add(
            part=parts[row["partkey"]],
            supplier=suppliers[row["suppkey"]],
            **row,
        )
    orders = {}
    for row in data.orders:
        orders[row["orderkey"]] = collections["orders"].add(
            customer=customers[row["custkey"]], **row
        )
    for row in data.lineitem:
        collections["lineitem"].add(
            order=orders[row["orderkey"]],
            part=parts[row["partkey"]],
            supplier=suppliers[row["suppkey"]],
            **row,
        )
    return collections


#: Columns loaded into the relational comparator per table (keys retained,
#: object references dropped — the RDBMS joins by value).
_RDBMS_COLUMNS = {
    "region": ("regionkey", "name"),
    "nation": ("nationkey", "name", "regionkey"),
    "supplier": ("suppkey", "name", "nationkey", "acctbal"),
    "customer": ("custkey", "name", "nationkey", "acctbal", "mktsegment"),
    "part": ("partkey", "mfgr", "brand", "type", "size", "retailprice"),
    "partsupp": ("partkey", "suppkey", "availqty", "supplycost"),
    "orders": (
        "orderkey",
        "custkey",
        "orderstatus",
        "totalprice",
        "orderdate",
        "orderpriority",
        "shippriority",
    ),
    "lineitem": (
        "orderkey",
        "partkey",
        "suppkey",
        "quantity",
        "extendedprice",
        "discount",
        "tax",
        "returnflag",
        "linestatus",
        "shipdate",
        "commitdate",
        "receiptdate",
        "shipmode",
    ),
}


def load_rdbms(data: TpchData) -> Dict[str, ColumnTable]:
    """Load the dataset into the column-store comparator."""
    db = {
        name: ColumnTable.from_rows(name, data.table(name), cols)
        for name, cols in _RDBMS_COLUMNS.items()
    }
    # The paper's SQL Server setup uses clustered indexes on shipdate and
    # orderdate (section 7, "Comparison to RDBMS").
    db["lineitem"].create_clustered_index("shipdate")
    db["orders"].create_clustered_index("orderdate")
    return db
