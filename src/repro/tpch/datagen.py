"""Deterministic in-process TPC-H data generator.

The official ``dbgen`` binaries are unavailable offline, so this module
generates spec-shaped data directly (see DESIGN.md substitution table):
row counts scale with the scale factor exactly as in TPC-H (150k
customers, 1.5M orders, 1–7 lineitems per order, 10k suppliers, 200k
parts per SF), and every column the six evaluation queries touch follows
the spec's distribution rules — e.g. ``returnflag`` derives from
``receiptdate`` against the 1995-06-17 watershed, ``linestatus`` from
``shipdate``, dates fall in the spec windows, and monetary columns use
two-digit fixed-point values.  Text columns (names, comments) are
synthetic but realistically sized.

Everything is driven by one seeded :class:`random.Random`, so a given
``(scale_factor, seed)`` always produces identical data across runs and
across the SMC / managed / columnar / RDBMS loaders.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass, field
from decimal import Decimal
from typing import Any, Dict, List

#: Classification watershed used by returnflag/linestatus (TPC-H 4.2.3).
_WATERSHED = _dt.date(1995, 6, 17)
_ORDER_START = _dt.date(1992, 1, 1)
_ORDER_END = _dt.date(1998, 8, 2)

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: The 25 TPC-H nations with their region assignment.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]
INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
CONTAINERS1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINERS2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
_WORDS = (
    "express deposits haggle slyly regular accounts carefully final "
    "requests furiously even ideas pending foxes unusual packages bold"
).split()


@dataclass
class TpchData:
    """Generated tables as lists of plain column dictionaries."""

    scale_factor: float
    seed: int
    region: List[Dict[str, Any]] = field(default_factory=list)
    nation: List[Dict[str, Any]] = field(default_factory=list)
    supplier: List[Dict[str, Any]] = field(default_factory=list)
    customer: List[Dict[str, Any]] = field(default_factory=list)
    part: List[Dict[str, Any]] = field(default_factory=list)
    partsupp: List[Dict[str, Any]] = field(default_factory=list)
    orders: List[Dict[str, Any]] = field(default_factory=list)
    lineitem: List[Dict[str, Any]] = field(default_factory=list)

    def table(self, name: str) -> List[Dict[str, Any]]:
        return getattr(self, name)

    def row_counts(self) -> Dict[str, int]:
        from repro.tpch.schema import TABLES

        return {name: len(self.table(name)) for name in TABLES}


def _money(rnd: random.Random, lo: int, hi: int) -> Decimal:
    """Uniform two-digit money value in [lo, hi]."""
    return Decimal(rnd.randrange(lo * 100, hi * 100 + 1)).scaleb(-2)


def _comment(rnd: random.Random) -> str:
    return " ".join(rnd.choice(_WORDS) for __ in range(rnd.randrange(2, 6)))


def generate(scale_factor: float = 0.01, seed: int = 42) -> TpchData:
    """Generate a deterministic TPC-H dataset at *scale_factor*."""
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    rnd = random.Random(seed)
    data = TpchData(scale_factor, seed)

    n_supplier = max(5, round(10_000 * scale_factor))
    n_part = max(20, round(200_000 * scale_factor))
    n_customer = max(15, round(150_000 * scale_factor))
    n_orders = max(30, round(1_500_000 * scale_factor))

    for i, name in enumerate(REGIONS):
        data.region.append(
            {"regionkey": i, "name": name, "comment": _comment(rnd)}
        )

    for i, (name, regionkey) in enumerate(NATIONS):
        data.nation.append(
            {
                "nationkey": i,
                "name": name,
                "regionkey": regionkey,
                "comment": _comment(rnd),
            }
        )

    for i in range(1, n_supplier + 1):
        data.supplier.append(
            {
                "suppkey": i,
                "name": f"Supplier#{i:09d}",
                "address": f"{rnd.randrange(1, 999)} supply st.",
                "nationkey": rnd.randrange(25),
                "phone": f"{rnd.randrange(10, 35)}-{rnd.randrange(100, 999)}-{rnd.randrange(1000, 9999)}",
                "acctbal": _money(rnd, -999, 9999),
                "comment": _comment(rnd),
            }
        )

    for i in range(1, n_customer + 1):
        data.customer.append(
            {
                "custkey": i,
                "name": f"Customer#{i:09d}",
                "address": f"{rnd.randrange(1, 999)} market ave.",
                "nationkey": rnd.randrange(25),
                "phone": f"{rnd.randrange(10, 35)}-{rnd.randrange(100, 999)}-{rnd.randrange(1000, 9999)}",
                "acctbal": _money(rnd, -999, 9999),
                "mktsegment": rnd.choice(SEGMENTS),
                "comment": _comment(rnd),
            }
        )

    for i in range(1, n_part + 1):
        data.part.append(
            {
                "partkey": i,
                "name": f"part {i} " + " ".join(rnd.sample(TYPE_SYLL2, 2)).lower(),
                "mfgr": f"Manufacturer#{rnd.randrange(1, 6)}",
                "brand": f"Brand#{rnd.randrange(1, 6)}{rnd.randrange(1, 6)}",
                "type": (
                    f"{rnd.choice(TYPE_SYLL1)} {rnd.choice(TYPE_SYLL2)} "
                    f"{rnd.choice(TYPE_SYLL3)}"
                ),
                "size": rnd.randrange(1, 51),
                "container": f"{rnd.choice(CONTAINERS1)} {rnd.choice(CONTAINERS2)}",
                "retailprice": _money(rnd, 900, 2000),
                "comment": _comment(rnd),
            }
        )

    # Four suppliers per part, as in the spec.
    for part in data.part:
        for __ in range(4):
            data.partsupp.append(
                {
                    "partkey": part["partkey"],
                    "suppkey": rnd.randrange(1, n_supplier + 1),
                    "availqty": rnd.randrange(1, 10_000),
                    "supplycost": _money(rnd, 1, 1000),
                    "comment": _comment(rnd),
                }
            )

    order_span = (_ORDER_END - _ORDER_START).days
    linenumber_total = 0
    for i in range(1, n_orders + 1):
        orderdate = _ORDER_START + _dt.timedelta(days=rnd.randrange(order_span))
        custkey = rnd.randrange(1, n_customer + 1)
        order = {
            "orderkey": i,
            "custkey": custkey,
            "orderstatus": "O",
            "totalprice": Decimal(0),
            "orderdate": orderdate,
            "orderpriority": rnd.choice(PRIORITIES),
            "clerk": f"Clerk#{rnd.randrange(1, 1000):09d}",
            "shippriority": 0,
            "comment": _comment(rnd),
        }
        total = Decimal(0)
        n_lines = rnd.randrange(1, 8)
        all_f = True
        any_f = False
        for line in range(1, n_lines + 1):
            partkey = rnd.randrange(1, n_part + 1)
            suppkey = rnd.randrange(1, n_supplier + 1)
            quantity = Decimal(rnd.randrange(1, 51))
            retail = data.part[partkey - 1]["retailprice"]
            extendedprice = (quantity * retail).quantize(Decimal("0.01"))
            discount = Decimal(rnd.randrange(0, 11)).scaleb(-2)
            tax = Decimal(rnd.randrange(0, 9)).scaleb(-2)
            shipdate = orderdate + _dt.timedelta(days=rnd.randrange(1, 122))
            commitdate = orderdate + _dt.timedelta(days=rnd.randrange(30, 91))
            receiptdate = shipdate + _dt.timedelta(days=rnd.randrange(1, 31))
            if receiptdate <= _WATERSHED:
                returnflag = rnd.choice("RA")
            else:
                returnflag = "N"
            linestatus = "O" if shipdate > _WATERSHED else "F"
            if linestatus == "F":
                any_f = True
            else:
                all_f = False
            data.lineitem.append(
                {
                    "orderkey": i,
                    "partkey": partkey,
                    "suppkey": suppkey,
                    "linenumber": line,
                    "quantity": quantity,
                    "extendedprice": extendedprice,
                    "discount": discount,
                    "tax": tax,
                    "returnflag": returnflag,
                    "linestatus": linestatus,
                    "shipdate": shipdate,
                    "commitdate": commitdate,
                    "receiptdate": receiptdate,
                    "shipinstruct": rnd.choice(INSTRUCTIONS),
                    "shipmode": rnd.choice(SHIPMODES),
                    "comment": _comment(rnd),
                }
            )
            total += extendedprice * (1 - discount) * (1 + tax)
            linenumber_total += 1
        order["totalprice"] = total.quantize(Decimal("0.01"))
        order["orderstatus"] = "F" if all_f else ("P" if any_f else "O")
        data.orders.append(order)

    return data
