"""TPC-H queries 1–6 as language-integrated queries (paper Figure 11).

Each builder function takes the collection dict produced by a loader and
returns a :class:`~repro.query.builder.Query`; dynamic values are bound
through named parameters at execution, mirroring the paper's generated
query functions "that contain the same parameters as arguments".

Joins follow references (the paper's object-oriented adaptation performs
"most joins using references"): Q3/Q5 navigate
lineitem → order → customer → nation chains instead of value joins, Q5's
``c_nationkey = s_nationkey`` becomes a reference-identity comparison, and
Q2/Q4's correlated EXISTS/min subqueries become reference/key semi-joins
(``where_in``).
"""

from __future__ import annotations

import datetime as _dt
from decimal import Decimal
from typing import Any, Dict

from repro.query.builder import Avg, Count, Min, Query, Sum, ref_key
from repro.query.expressions import case_when, param, year_of
from repro.tpch.schema import Customer, Lineitem, Orders, PartSupp

L = Lineitem
O = Orders

#: TPC-H validation-style defaults for every query parameter.
DEFAULT_PARAMS: Dict[str, Any] = {
    # Q1: DATE '1998-12-01' - INTERVAL '90' DAY
    "q1_date": _dt.date(1998, 9, 2),
    # Q2: size 15, type %BRASS, region EUROPE
    "q2_size": 15,
    "q2_region": "EUROPE",
    # Q3: segment BUILDING, date 1995-03-15
    "q3_segment": "BUILDING",
    "q3_date": _dt.date(1995, 3, 15),
    # Q4: quarter starting 1993-07-01
    "q4_date": _dt.date(1993, 7, 1),
    "q4_date_hi": _dt.date(1993, 10, 1),
    # Q5: region ASIA, year starting 1994-01-01
    "q5_region": "ASIA",
    "q5_date": _dt.date(1994, 1, 1),
    "q5_date_hi": _dt.date(1995, 1, 1),
    # Q6: year 1994, discount 0.06 +/- 0.01, quantity < 24
    "q6_date": _dt.date(1994, 1, 1),
    "q6_date_hi": _dt.date(1995, 1, 1),
    "q6_disc_lo": Decimal("0.05"),
    "q6_disc_hi": Decimal("0.07"),
    "q6_quantity": Decimal(24),
}

#: Q2's LIKE '%BRASS' type suffix (string literal folded into the query
#: structure, as a statically-known LINQ query would).
Q2_TYPE_SUFFIX = "BRASS"


def q1(c: Dict[str, Any]) -> Query:
    """Pricing summary report."""
    return (
        c["lineitem"]
        .query()
        .where(L.shipdate <= param("q1_date"))
        .group_by(returnflag=L.returnflag, linestatus=L.linestatus)
        .aggregate(
            sum_qty=Sum(L.quantity),
            sum_base_price=Sum(L.extendedprice),
            sum_disc_price=Sum(L.extendedprice * (1 - L.discount)),
            sum_charge=Sum(
                L.extendedprice * (1 - L.discount) * (1 + L.tax)
            ),
            avg_qty=Avg(L.quantity),
            avg_price=Avg(L.extendedprice),
            avg_disc=Avg(L.discount),
            count_order=Count(),
        )
        .order_by("returnflag", "linestatus")
    )


def q2(c: Dict[str, Any]) -> Query:
    """Minimum-cost supplier."""
    ps = PartSupp
    qualifying = (
        (ps.part.ref("size") == param("q2_size"))
        & ps.part.ref("type").contains(Q2_TYPE_SUFFIX)
        & (
            ps.supplier.ref("nation").ref("region").ref("name")
            == param("q2_region")
        )
    )
    min_cost = (
        c["partsupp"]
        .query()
        .where(qualifying)
        .group_by(part=ref_key(ps.part))
        .aggregate(min_cost=Min(ps.supplycost))
    )
    return (
        c["partsupp"]
        .query()
        .where(qualifying)
        .where_in((ref_key(ps.part), ps.supplycost), min_cost)
        .select(
            acctbal=ps.supplier.ref("acctbal"),
            s_name=ps.supplier.ref("name"),
            n_name=ps.supplier.ref("nation").ref("name"),
            partkey=ps.part.ref("partkey"),
            mfgr=ps.part.ref("mfgr"),
        )
        .order_by("-acctbal", "n_name", "s_name", "partkey")
        .take(100)
    )


def q3(c: Dict[str, Any]) -> Query:
    """Shipping priority."""
    return (
        c["lineitem"]
        .query()
        .where(
            L.order.ref("customer").ref("mktsegment") == param("q3_segment")
        )
        .where(L.order.ref("orderdate") < param("q3_date"))
        .where(L.shipdate > param("q3_date"))
        .group_by(
            orderkey=L.order.ref("orderkey"),
            orderdate=L.order.ref("orderdate"),
            shippriority=L.order.ref("shippriority"),
        )
        .aggregate(revenue=Sum(L.extendedprice * (1 - L.discount)))
        .order_by("-revenue", "orderdate")
        .take(10)
    )


def q4(c: Dict[str, Any]) -> Query:
    """Order-priority checking (EXISTS as a key semi-join)."""
    late_lines = (
        c["lineitem"]
        .query()
        .where(L.commitdate < L.receiptdate)
        .select(orderkey=L.orderkey)
    )
    return (
        c["orders"]
        .query()
        .where(O.orderdate >= param("q4_date"))
        .where(O.orderdate < param("q4_date_hi"))
        .where_in(O.orderkey, late_lines)
        .group_by(orderpriority=O.orderpriority)
        .aggregate(order_count=Count())
        .order_by("orderpriority")
    )


def q5(c: Dict[str, Any]) -> Query:
    """Local supplier volume (reference-identity join on nation)."""
    return (
        c["lineitem"]
        .query()
        .where(
            L.supplier.ref("nation").ref("region").ref("name")
            == param("q5_region")
        )
        .where(L.order.ref("orderdate") >= param("q5_date"))
        .where(L.order.ref("orderdate") < param("q5_date_hi"))
        .where(
            L.supplier.ref("nation")
            == L.order.ref("customer").ref("nation")
        )
        .group_by(n_name=L.supplier.ref("nation").ref("name"))
        .aggregate(revenue=Sum(L.extendedprice * (1 - L.discount)))
        .order_by("-revenue")
    )


def q6(c: Dict[str, Any]) -> Query:
    """Forecast revenue change (pure scan + scalar aggregate)."""
    return (
        c["lineitem"]
        .query()
        .where(L.shipdate >= param("q6_date"))
        .where(L.shipdate < param("q6_date_hi"))
        .where(L.discount.between(param("q6_disc_lo"), param("q6_disc_hi")))
        .where(L.quantity < param("q6_quantity"))
        .aggregate(revenue=Sum(L.extendedprice * L.discount))
    )


def q7(c: Dict[str, Any]) -> Query:
    """Volume shipping between two nations (beyond the paper's six).

    Reference-navigated adaptation: supplier and customer nations must be
    the two parameter nations, crosswise; revenue grouped by the nation
    pair and the shipment year (``year_of``).
    """
    supp_nation = L.supplier.ref("nation").ref("name")
    cust_nation = L.order.ref("customer").ref("nation").ref("name")
    return (
        c["lineitem"]
        .query()
        .where(L.shipdate >= param("q7_date_lo"))
        .where(L.shipdate <= param("q7_date_hi"))
        .where(
            ((supp_nation == param("q7_nation_a")) & (cust_nation == param("q7_nation_b")))
            | ((supp_nation == param("q7_nation_b")) & (cust_nation == param("q7_nation_a")))
        )
        .group_by(
            supp_nation=supp_nation,
            cust_nation=cust_nation,
            year=year_of(L.shipdate),
        )
        .aggregate(revenue=Sum(L.extendedprice * (1 - L.discount)))
        .order_by("supp_nation", "cust_nation", "year")
    )


def q10(c: Dict[str, Any]) -> Query:
    """Returned-item reporting (beyond the paper's six)."""
    return (
        c["lineitem"]
        .query()
        .where(L.returnflag == "R")
        .where(L.order.ref("orderdate") >= param("q10_date"))
        .where(L.order.ref("orderdate") < param("q10_date_hi"))
        .group_by(
            custkey=L.order.ref("customer").ref("custkey"),
            name=L.order.ref("customer").ref("name"),
            acctbal=L.order.ref("customer").ref("acctbal"),
            nation=L.order.ref("customer").ref("nation").ref("name"),
        )
        .aggregate(revenue=Sum(L.extendedprice * (1 - L.discount)))
        .order_by("-revenue", "custkey")
        .take(20)
    )


def q12(c: Dict[str, Any]) -> Query:
    """Shipping modes and order priority (conditional aggregation)."""
    high = L.order.ref("orderpriority").isin(["1-URGENT", "2-HIGH"])
    return (
        c["lineitem"]
        .query()
        .where(L.shipmode.isin(["MAIL", "SHIP"]))
        .where(L.commitdate < L.receiptdate)
        .where(L.shipdate < L.commitdate)
        .where(L.receiptdate >= param("q12_date"))
        .where(L.receiptdate < param("q12_date_hi"))
        .group_by(shipmode=L.shipmode)
        .aggregate(
            high_line_count=Sum(case_when(high, 1, 0)),
            low_line_count=Sum(case_when(high, 0, 1)),
        )
        .order_by("shipmode")
    )


def q14(c: Dict[str, Any]) -> Query:
    """Promotion effect: promo vs total revenue in one month.

    Returns the two sums; the promo percentage is
    ``100 * promo_revenue / total_revenue``.
    """
    promo = L.part.ref("type").startswith("PROMO")
    revenue = L.extendedprice * (1 - L.discount)
    return (
        c["lineitem"]
        .query()
        .where(L.shipdate >= param("q14_date"))
        .where(L.shipdate < param("q14_date_hi"))
        .aggregate(
            promo_revenue=Sum(case_when(promo, revenue, 0)),
            total_revenue=Sum(revenue),
        )
    )


QUERIES = {"q1": q1, "q2": q2, "q3": q3, "q4": q4, "q5": q5, "q6": q6}

#: Queries beyond the paper's evaluation set, provided for completeness;
#: cross-checked against the interpreter but not part of any figure.
EXTRA_QUERIES = {"q7": q7, "q10": q10, "q12": q12, "q14": q14}

DEFAULT_PARAMS.update(
    {
        "q7_nation_a": "FRANCE",
        "q7_nation_b": "GERMANY",
        "q7_date_lo": _dt.date(1995, 1, 1),
        "q7_date_hi": _dt.date(1996, 12, 31),
        "q10_date": _dt.date(1993, 10, 1),
        "q10_date_hi": _dt.date(1994, 1, 1),
        "q12_date": _dt.date(1994, 1, 1),
        "q12_date_hi": _dt.date(1995, 1, 1),
        "q14_date": _dt.date(1995, 9, 1),
        "q14_date_hi": _dt.date(1995, 10, 1),
    }
)


def run_query(
    name: str,
    collections: Dict[str, Any],
    engine: str = "compiled",
    flavor: str = None,
    params: Dict[str, Any] = None,
):
    """Build and execute one TPC-H query with default parameters."""
    merged = dict(DEFAULT_PARAMS)
    if params:
        merged.update(params)
    builder = QUERIES.get(name) or EXTRA_QUERIES[name]
    return builder(collections).run(engine=engine, flavor=flavor, params=merged)
