"""TPC-H workload: schema, generator, loaders, queries."""

from repro.tpch.datagen import TpchData, generate
from repro.tpch.loader import load_managed, load_rdbms, load_smc
from repro.tpch.queries import DEFAULT_PARAMS, QUERIES, run_query

__all__ = [
    "TpchData",
    "generate",
    "load_managed",
    "load_rdbms",
    "load_smc",
    "DEFAULT_PARAMS",
    "QUERIES",
    "run_query",
]
