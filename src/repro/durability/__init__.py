"""Durability: write-ahead log, epoch-consistent checkpoints, recovery.

The paper's motivating deployment loads "a company's most recent
business data" into collections at startup (section 1); this package
makes that state survive crashes instead of depending on a manually
saved snapshot.  Three layers:

* :mod:`repro.durability.wal` — LSN-stamped, CRC32-framed mutation
  records with group commit and a torn-tail/interior-corruption
  classification contract;
* :mod:`repro.durability.checkpoint` — data-directory layout, the
  atomically-replaced MANIFEST, and epoch-consistent SMCSNAP1
  checkpoints that truncate the log;
* :mod:`repro.durability.recovery` — checkpoint reload + committed
  log-tail replay through the normal mutation paths;
* :mod:`repro.durability.replication` — WAL shipping: a primary streams
  its committed tail to read replicas, which replay it continuously
  through the same recovery apply path (``docs/replication.md``).

:class:`~repro.durability.store.DurableStore` is the façade most code
uses (and what ``repro serve --data-dir`` runs on).  See
``docs/durability.md`` for the on-disk formats and the crash matrix.
"""

from repro.durability.checkpoint import (
    CheckpointManager,
    DataDir,
    DataDirError,
    MANIFEST_NAME,
)
from repro.durability.recovery import RecoveryReport, apply_record, recover
from repro.durability.replication import (
    ReplicationClient,
    ReplicationError,
    StalePromotionError,
    bootstrap_from_resync,
)
from repro.durability.store import DurableStore, MutationError
from repro.durability.wal import (
    RecoveryError,
    WalCorruptionError,
    WalRecord,
    WriteAheadLog,
    scan_wal,
)

__all__ = [
    "CheckpointManager",
    "DataDir",
    "DataDirError",
    "DurableStore",
    "MANIFEST_NAME",
    "MutationError",
    "RecoveryError",
    "RecoveryReport",
    "ReplicationClient",
    "ReplicationError",
    "StalePromotionError",
    "WalCorruptionError",
    "WalRecord",
    "WriteAheadLog",
    "apply_record",
    "bootstrap_from_resync",
    "recover",
    "scan_wal",
]
