"""WAL shipping: a primary streams its committed tail to read replicas.

The replication unit is the write-ahead log itself.  The CRC-framed,
LSN-stamped records the durability layer already writes are a complete,
wire-ready serialization of every mutation, so a follower that appends
the shipped frames verbatim into its own segment (``append_shipped``
keeps the primary's LSNs) and feeds them through the same
``recovery.apply_record`` path a restart would use ends up with a data
directory *byte-identical* to the primary's — every single-process
crash guarantee extends to the fleet for free.

Protocol (all over the existing length-prefixed service protocol)::

    follower                          primary
    --------                          -------
    {"op":"replicate",
     "after_lsn": L, "wait": w}  -->  read_tail(L): committed records
                                 <--  {"records":[[lsn,kind,payload]..],
                                       "committed_lsn": C,
                                       "cut_lsn": K, "segment_lsn": S}
    ... apply, advance watermark, poll again from the new watermark ...

A follower whose position predates the active segment (the primary
checkpointed and swept the records away) gets ``resync_required`` and
re-bootstraps from ``{"op":"replicate","resync":true}``, which returns
the current manifest + checkpoint snapshot; catch-up is then checkpoint
reload + tail streaming — exactly a restart, but over the wire.

LSN watermarks:

* ``applied_lsn`` — last LSN the follower has durably appended *and*
  applied to its in-memory collections; advances only at batch
  boundaries so readers never observe half a batch.
* ``source_committed_lsn`` — the primary's committed LSN as of the
  last successful poll; ``source_committed_lsn - applied_lsn`` is the
  replica's lag in records.

Checkpoint alignment: INTERN string ids are scoped to one log segment,
so a replica cuts its own checkpoint exactly when the shipped
``cut_lsn`` catches up to its applied watermark — segment boundaries
stay aligned across the fleet, and the replica's manifest records the
*primary's* entry ids (``translate_entries``) so shipped records keep
resolving after the replica restarts from its own checkpoint.

Promotion: ``promote(min_lsn)`` refuses (``StalePromotionError``) when
the replica's watermark is behind ``min_lsn`` — the failover driver
passes the freshest applied LSN in the fleet, so a lagging replica can
never seize the primary role past a fresher peer.  Promotion stops the
stream, re-attaches the mutation hooks and cuts a *local-id* checkpoint
(the promotion barrier): from that point the node's own indirection
entries are authoritative and no mixed-id log segment can exist.
"""

from __future__ import annotations

import base64
import contextlib
import os
import random
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.durability.checkpoint import DataDir
from repro.durability.recovery import apply_record
from repro.durability.store import DEFAULT_CHECKPOINT_BYTES, DurableStore
from repro.durability.wal import (
    BEGIN,
    COMMIT,
    INTERN,
    WalRecord,
    WriteAheadLog,
    fsync_dir,
)
from repro.errors import InjectedFaultError, SmcError
from repro.sanitizer import hooks as _san

#: Epoch-advance cadence while applying (mirrors the primary's churn).
EPOCH_EVERY_BATCHES = 32


class ReplicationError(SmcError):
    """A replication-protocol failure a caller must handle."""


class StalePromotionError(ReplicationError):
    """Promotion refused: a fresher replica exists."""

    def __init__(self, applied_lsn: int, min_lsn: int) -> None:
        super().__init__(
            f"refusing promotion at applied LSN {applied_lsn}: a fresher "
            f"replica is at LSN {min_lsn}"
        )
        self.applied_lsn = applied_lsn
        self.min_lsn = min_lsn


def bootstrap_from_resync(
    data_dir: str, payload: Dict[str, Any], fsync_policy: str = "commit"
) -> Dict[str, Any]:
    """Materialize a primary's resync payload as a local data directory.

    Writes the shipped checkpoint snapshot and manifest and creates an
    empty active segment with the same name (and start LSN) as the
    primary's, so ``DurableStore.open`` recovers it like any local
    directory.  Any previous generation of files is cleared first.
    """
    from repro.durability.checkpoint import MANIFEST_NAME

    manifest = dict(payload["manifest"])
    snap = base64.b64decode(payload["snapshot_b64"])
    dd = DataDir(data_dir)
    dd.ensure()
    for name in os.listdir(dd.root):
        if name == MANIFEST_NAME or name.endswith(".tmp") or name.startswith(
            ("wal-", "checkpoint-")
        ):
            with contextlib.suppress(OSError):
                os.unlink(os.path.join(dd.root, name))
    ckpt_path = os.path.join(dd.root, manifest["checkpoint"])
    tmp = ckpt_path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(snap)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, ckpt_path)
    wal = WriteAheadLog.create(
        os.path.join(dd.root, manifest["wal"]),
        start_lsn=int(manifest["cut_lsn"]) + 1,
        fsync_policy=fsync_policy,
    )
    wal.close()
    dd.write_manifest(manifest)
    fsync_dir(dd.root)
    return manifest


class ReplicationClient:
    """Follower half of WAL shipping: join, stream, apply, promote.

    Owns the replica's :class:`DurableStore` (mutation hooks detached —
    the shipped frames *are* the log) and a background thread that
    long-polls the primary's ``replicate`` op, appends each shipped
    record to the local segment and applies it through the recovery
    path, advancing the ``applied_lsn`` watermark at batch boundaries.
    """

    def __init__(
        self,
        host: str,
        port: int,
        data_dir: str,
        *,
        fsync_policy: str = "commit",
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        poll_wait: float = 0.5,
        max_bytes: int = 2 * 1024 * 1024,
        down_after: int = 3,
        retry_backoff: float = 0.05,
        name: str = "replica",
        transport_factory: Optional[Callable[[str, int], Any]] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.data_dir = str(data_dir)
        self.name = name
        self.fsync_policy = fsync_policy
        self.checkpoint_bytes = checkpoint_bytes
        self.poll_wait = poll_wait
        self.max_bytes = max_bytes
        self.down_after = down_after
        self.retry_backoff = retry_backoff
        self.transport_factory = transport_factory
        self.store: Optional[DurableStore] = None
        self._transport: Any = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._parked = threading.Event()
        self._cond = threading.Condition()
        self._rng = random.Random(0xC0FFEE ^ (self.port or 1))
        # Watermarks and fleet-visible state (guarded by _cond).
        self.applied_lsn = 0
        self.source_committed_lsn = 0
        self.primary_down = False
        self.needs_resync = False
        self.promoted = False
        self.failure: Optional[BaseException] = None
        # Lifetime counters (the metrics bridge scrapes these).
        self.applied_records = 0
        self.applied_batches = 0
        self.polls = 0
        self.reconnects = 0
        self.resyncs = 0
        self.local_checkpoints = 0
        self.promotions = 0
        # Apply state: shipped entry id -> local handle, sid -> text.
        self._entry_map: Dict[int, Any] = {}
        self._strings: Dict[int, str] = {}
        self._collections: Dict[str, Any] = {}
        self._batch_buf: Optional[List[WalRecord]] = None
        self._local_cut = 0

    # -- join ------------------------------------------------------------

    def sync(self) -> DurableStore:
        """Join the primary and catch up: checkpoint + tail.

        Opens the local data directory when one exists (replica
        restart), otherwise clones the primary's current checkpoint;
        either way the committed tail is then streamed until the
        watermark reaches the primary's committed LSN.  Returns the live
        store, ready to be served.
        """
        dd = DataDir(self.data_dir)
        if dd.is_initialized():
            self._open_local()
        else:
            self._clone()
        while self._poll_once(join=True):
            pass
        return self.store

    def _open_local(self) -> None:
        store = DurableStore.open(
            self.data_dir,
            fsync_policy=self.fsync_policy,
            checkpoint_bytes=self.checkpoint_bytes,
        )
        # While following, the shipped frames are the log: local
        # mutation hooks would double-log every applied record.
        store.detach_mutation_hooks()
        self.store = store
        self._collections = dict(store.collections)
        self._collections["_manager"] = store.manager
        self._entry_map = store.report.entry_map if store.report else {}
        self._strings = dict(store.report.strings) if store.report else {}
        self._local_cut = store.cut_lsn
        self._batch_buf = None
        with self._cond:
            self.applied_lsn = store.wal.last_lsn
            self._cond.notify_all()

    def _clone(self) -> None:
        reply = self._call({"op": "replicate", "resync": True})
        if self.store is not None:
            self.store.close(checkpoint=False)
            self.store = None
        bootstrap_from_resync(
            self.data_dir, reply["resync"], fsync_policy=self.fsync_policy
        )
        self.resyncs += 1
        self._open_local()

    # -- the streaming loop ----------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name=f"repl-{self.name}", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        failures = 0
        delay = self.retry_backoff
        while not self._stop.is_set():
            if self._paused.is_set():
                self._parked.set()
                self._stop.wait(0.02)
                continue
            self._parked.clear()
            if self.needs_resync:
                # Terminal until the operator restarts the replica: the
                # serving layer holds live references into the current
                # collections, so they cannot be swapped underneath it.
                break
            try:
                self._poll_once()
            except InjectedFaultError as exc:
                # Injected-crash model: this replica process died here.
                self.failure = exc
                break
            except ReplicationError as exc:
                self.failure = exc
                with self._cond:
                    self.needs_resync = True
                    self._cond.notify_all()
                break
            except Exception as exc:  # noqa: BLE001 - transport errors
                failures += 1
                self.reconnects += 1
                self._drop_transport()
                if failures >= self.down_after and not self.primary_down:
                    with self._cond:
                        self.primary_down = True
                        self._cond.notify_all()
                self._stop.wait(delay * (0.5 + self._rng.random()))
                delay = min(delay * 2, 2.0)
                del exc
                continue
            if failures or self.primary_down:
                failures = 0
                delay = self.retry_backoff
                with self._cond:
                    self.primary_down = False
                    self._cond.notify_all()

    def _poll_once(self, join: bool = False) -> bool:
        """One replicate round-trip; returns True when records arrived."""
        reply = self._call(
            {
                "op": "replicate",
                "after_lsn": self.applied_lsn,
                "wait": 0.0 if join else self.poll_wait,
                "max_bytes": self.max_bytes,
            }
        )
        self.polls += 1
        if reply.get("resync_required"):
            if join:
                self._clone()
                return True
            with self._cond:
                self.needs_resync = True
                self._cond.notify_all()
            return False
        # The primary checkpointed: cut our own checkpoint at the same
        # LSN *before* applying records from its new segment, keeping
        # segment boundaries (and INTERN sid scopes) fleet-aligned.
        cut = int(reply.get("cut_lsn", self._local_cut))
        if cut > self._local_cut and self.applied_lsn == cut:
            self._checkpoint_local(cut)
        records = reply.get("records") or []
        if records:
            self._apply_records(records)
        with self._cond:
            committed = int(reply.get("committed_lsn", self.applied_lsn))
            if committed > self.source_committed_lsn:
                self.source_committed_lsn = committed
            self._cond.notify_all()
        return bool(records)

    def _apply_records(self, records: List[Any]) -> None:
        wal = self.store.wal
        mgr = self.store.manager
        for item in records:
            lsn, kind, payload = int(item[0]), int(item[1]), item[2]
            if lsn != wal.next_lsn:
                raise ReplicationError(
                    f"shipped LSN {lsn} does not follow local segment "
                    f"(next is {wal.next_lsn}); resync required"
                )
            if _san.SANITIZER is not None:
                _san.SANITIZER.event("repl.apply", wal=wal, lsn=lsn, kind=kind)
            wal.append_shipped(lsn, kind, payload, sync=False)
            if kind == BEGIN:
                self._batch_buf = []
            elif kind == COMMIT:
                buffered = self._batch_buf or []
                self._batch_buf = None
                for rec in buffered:
                    apply_record(
                        self._collections,
                        mgr,
                        self._entry_map,
                        self._strings,
                        rec,
                    )
                    self.applied_records += 1
                self.applied_batches += 1
                self._advance(lsn)
            elif kind == INTERN:
                self._strings[int(payload["i"])] = payload["t"]
                if self._batch_buf is None:
                    self._advance(lsn)
            else:
                rec = WalRecord(lsn, kind, payload, 0, 0)
                if self._batch_buf is not None:
                    self._batch_buf.append(rec)
                else:
                    apply_record(
                        self._collections,
                        mgr,
                        self._entry_map,
                        self._strings,
                        rec,
                    )
                    self.applied_records += 1
                    self._advance(lsn)
        if self.fsync_policy != "none":
            wal.sync()
        self._register_new_collections()
        if self.applied_batches and self.applied_batches % EPOCH_EVERY_BATCHES == 0:
            mgr.advance_epoch()

    def _register_new_collections(self) -> None:
        """Adopt collections first created by the shipped tail."""
        if len(self._collections) - 1 == len(self.store.collections):
            return
        for name, coll in self._collections.items():
            if name.startswith("_") or name in self.store.collections:
                continue
            self.store.collections[name] = coll
            self.store._ckpt.collections[name] = coll
            self.store._names[id(coll)] = name

    def _advance(self, lsn: int) -> None:
        with self._cond:
            if lsn > self.applied_lsn:
                self.applied_lsn = lsn
            self._cond.notify_all()

    def _checkpoint_local(self, cut: int) -> None:
        def translate(entries: Dict[str, List[int]]) -> Dict[str, List[int]]:
            reverse = {
                handle.ref.entry: shipped_id
                for shipped_id, handle in self._entry_map.items()
            }
            return {
                name: [reverse[e] for e in ids]
                for name, ids in entries.items()
            }

        self.store.checkpoint(translate_entries=translate)
        # INTERN sids are segment-scoped; the primary's next segment
        # re-interns everything it references.
        self._strings.clear()
        self._local_cut = cut
        self.local_checkpoints += 1

    # -- staleness / status ----------------------------------------------

    def wait_for(self, lsn: int, timeout: float = 2.0) -> bool:
        """Block until the watermark reaches *lsn* (bounded-staleness)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self.applied_lsn >= lsn, timeout=timeout
            )

    @property
    def lag_records(self) -> int:
        return max(0, self.source_committed_lsn - self.applied_lsn)

    def status(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "applied_lsn": self.applied_lsn,
                "source_committed_lsn": self.source_committed_lsn,
                "lag_records": self.lag_records,
                "primary_down": self.primary_down,
                "needs_resync": self.needs_resync,
                "promoted": self.promoted,
                "crashed": self.failure is not None,
                "source": f"{self.host}:{self.port}",
                "polls": self.polls,
                "reconnects": self.reconnects,
                "resyncs": self.resyncs,
                "applied_records": self.applied_records,
                "applied_batches": self.applied_batches,
                "local_checkpoints": self.local_checkpoints,
            }

    # -- failover --------------------------------------------------------

    def promote(self, min_lsn: Optional[int] = None) -> int:
        """Become the primary; refuse when behind *min_lsn*.

        The failover driver passes the freshest applied LSN it observed
        across the fleet, so only that freshest replica can win.
        Idempotent once promoted.
        """
        with self._cond:
            if self.promoted:
                return self.applied_lsn
            if min_lsn is not None and self.applied_lsn < int(min_lsn):
                raise StalePromotionError(self.applied_lsn, int(min_lsn))
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=self.poll_wait + 5.0)
        self._drop_transport()
        if _san.SANITIZER is not None:
            _san.SANITIZER.event(
                "repl.promote", wal=self.store.wal, applied_lsn=self.applied_lsn
            )
        self.store.attach_mutation_hooks()
        # Promotion barrier: cut a checkpoint whose manifest records the
        # node's *own* entry ids.  The shipped-id lineage ends at the
        # cut, so the segment the new primary now writes can never mix
        # shipped and local id spaces.
        self.store.checkpoint()
        self._local_cut = self.store.cut_lsn
        with self._cond:
            self.promoted = True
            self._cond.notify_all()
        self.promotions += 1
        return self.applied_lsn

    def retarget(self, host: str, port: int) -> None:
        """Follow a different primary (post-failover re-pointing)."""
        self.host, self.port = host, int(port)
        self._drop_transport()
        with self._cond:
            self.primary_down = False
            self._cond.notify_all()

    # -- test hooks ------------------------------------------------------

    def pause(self, wait: float = 5.0) -> None:
        """Stop polling (keeps the watermark frozen; drills use this).

        Blocks up to *wait* seconds until the streaming loop is parked,
        so an in-flight poll cannot apply records after pause returns.
        """
        self._paused.set()
        if (
            self._thread is not None
            and self._thread.is_alive()
            and self._thread is not threading.current_thread()
        ):
            self._parked.wait(wait)

    def resume(self) -> None:
        self._paused.clear()

    # -- transport / lifecycle -------------------------------------------

    def _make_transport(self) -> Any:
        if self.transport_factory is not None:
            return self.transport_factory(self.host, self.port)
        from repro.service.client import ServiceClient

        return ServiceClient(
            self.host, self.port, timeout=30.0, open_session=False
        )

    def _call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._transport is None:
            self._transport = self._make_transport()
        return self._transport.call(message)

    def _drop_transport(self) -> None:
        transport, self._transport = self._transport, None
        if transport is not None:
            with contextlib.suppress(Exception):
                transport.close()

    def stop(self) -> None:
        """Stop the streaming loop and drop the connection (store stays)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=self.poll_wait + 5.0)
        self._drop_transport()

    def close(self, close_store: bool = True) -> None:
        self.stop()
        if close_store and self.store is not None and not self.promoted:
            self.store.close(checkpoint=False)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ReplicationClient {self.name} of {self.host}:{self.port} "
            f"at LSN {self.applied_lsn}>"
        )
