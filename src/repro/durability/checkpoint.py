"""Epoch-consistent checkpoints and the data-directory manifest.

A data directory is a self-describing on-disk store::

    MANIFEST                      JSON, atomically replaced (tmp + fsync
                                  + rename + directory fsync)
    checkpoint-<lsn>.smcsnap      SMCSNAP1 snapshot cut at <lsn>
    wal-<lsn>.log                 the active segment, first LSN <lsn>

The MANIFEST is the commit point: a crash anywhere during a checkpoint
leaves either the old manifest (old checkpoint + old log remain
authoritative; half-written new files are orphans swept later) or the
new one (the new checkpoint + empty new segment are authoritative).

Checkpoints are *epoch-consistent*: the snapshot is written inside an
epoch critical section, which pins the global epoch so no compaction
relocation phase can start mid-snapshot, and under the WAL's mutation
lock, so no mutation straddles the cut — the snapshot is exactly the
state after LSN ``cut_lsn``.  The manifest also records each
collection's indirection-entry ids in enumeration order; recovery zips
them with the reloaded rows to translate the entry ids carried by log
records into post-reload handles.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

from repro.durability.wal import RecoveryError, WriteAheadLog, fsync_dir
from repro.errors import SmcError
from repro.sanitizer import hooks as _san

MANIFEST_NAME = "MANIFEST"
MANIFEST_FORMAT = "SMCDUR1"


class DataDirError(SmcError):
    """Raised for an unusable or already-initialized data directory."""


class DataDir:
    """Path arithmetic and atomic manifest I/O for one data directory."""

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def ensure(self) -> None:
        os.makedirs(self.root, exist_ok=True)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def wal_path(self, start_lsn: int) -> str:
        return os.path.join(self.root, f"wal-{start_lsn:016d}.log")

    def checkpoint_path(self, cut_lsn: int) -> str:
        return os.path.join(self.root, f"checkpoint-{cut_lsn:016d}.smcsnap")

    def is_initialized(self) -> bool:
        return os.path.exists(self.manifest_path)

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        """The current manifest, or ``None`` for an uninitialized dir."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise RecoveryError(
                f"unreadable manifest {self.manifest_path}: {exc}"
            ) from None
        if manifest.get("format") != MANIFEST_FORMAT:
            raise RecoveryError(
                f"{self.manifest_path} is not a {MANIFEST_FORMAT} manifest "
                f"(format={manifest.get('format')!r})"
            )
        for key in ("checkpoint", "wal", "cut_lsn", "entries"):
            if key not in manifest:
                raise RecoveryError(
                    f"{self.manifest_path} is missing the {key!r} field"
                )
        return manifest

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        """Atomically replace the manifest (the checkpoint commit point)."""
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        if _san.SANITIZER is not None:
            _san.SANITIZER.event("checkpoint.manifest_rename", path=tmp)
        os.replace(tmp, self.manifest_path)
        fsync_dir(self.root)

    def sweep_orphans(self, keep: List[str]) -> int:
        """Delete files a superseded or crashed checkpoint left behind."""
        keep_names = {MANIFEST_NAME} | {os.path.basename(p) for p in keep}
        removed = 0
        for name in os.listdir(self.root):
            if name in keep_names:
                continue
            if (
                name.startswith(("wal-", "checkpoint-"))
                or name.endswith(".tmp")
            ):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:  # pragma: no cover - concurrent sweep
                    pass
        return removed


def collection_flags(collections: Dict[str, Any]) -> Dict[str, Any]:
    """Layout/encoding flags recovery needs to rebuild equivalently."""
    from repro.core.columnar import ColumnarCollection

    columnar = any(
        isinstance(c, ColumnarCollection)
        for k, c in collections.items()
        if not k.startswith("_")
    )
    manager = collections.get("_manager")
    string_dict = bool(getattr(manager, "string_dict", True))
    return {"columnar": columnar, "string_dict": string_dict}


class CheckpointManager:
    """Writes checkpoints and rolls the log over at each one."""

    def __init__(self, datadir: DataDir, manager, collections: Dict[str, Any]) -> None:
        self.datadir = datadir
        self.manager = manager
        self.collections = collections
        self.count = 0
        self.last_duration = 0.0
        self.last_rows = 0

    def checkpoint(self, wal: WriteAheadLog, translate_entries=None):
        """Snapshot the collections and start a fresh segment.

        Must be called with ``wal.hold()`` held.  Returns
        ``(manifest, new_wal)``; the caller swaps its active log.  On any
        failure before the manifest rename the old manifest/log pair
        stays fully authoritative.

        ``translate_entries`` (replication) maps the snapshot's local
        indirection-entry lists into another node's id space before they
        are recorded in the manifest: a read replica checkpoints with the
        *primary's* entry ids so the shipped log records keep resolving
        after the replica restarts from its own checkpoint.
        """
        from repro.io.snapshot import save_collections

        start = time.perf_counter()
        epochs = self.manager.epochs
        epochs.enter_critical_section()
        try:
            cut_lsn = wal.last_lsn
            if _san.SANITIZER is not None:
                _san.SANITIZER.event("checkpoint.begin", cut_lsn=cut_lsn)
            final = self.datadir.checkpoint_path(cut_lsn)
            tmp = final + ".tmp"
            entries: Dict[str, List[int]] = {}
            self.last_rows = save_collections(
                tmp, self.collections, fsync=True, entry_lists=entries
            )
            if translate_entries is not None:
                entries = translate_entries(entries)
            if _san.SANITIZER is not None:
                _san.SANITIZER.event("checkpoint.snapshot_rename", path=tmp)
            os.replace(tmp, final)
            fsync_dir(self.datadir.root)
            new_wal = WriteAheadLog.create(
                self.datadir.wal_path(cut_lsn + 1),
                start_lsn=cut_lsn + 1,
                fsync_policy=wal.fsync_policy,
            )
            manifest = {
                "format": MANIFEST_FORMAT,
                "checkpoint": os.path.basename(final),
                "cut_lsn": cut_lsn,
                "wal": os.path.basename(new_wal.path),
                "entries": entries,
                "rows": self.last_rows,
                **collection_flags(self.collections),
            }
            self.datadir.write_manifest(manifest)
        finally:
            epochs.exit_critical_section()
        wal.close()
        self.datadir.sweep_orphans(keep=[final, new_wal.path])
        self.count += 1
        self.last_duration = time.perf_counter() - start
        return manifest, new_wal

    def bootstrap(self, fsync_policy: str = "commit"):
        """First checkpoint of a brand-new store (cut at LSN 0)."""
        from repro.io.snapshot import save_collections

        self.datadir.ensure()
        if self.datadir.is_initialized():
            raise DataDirError(
                f"{self.datadir.root} is already an initialized data "
                f"directory; use open()/recover() instead"
            )
        start = time.perf_counter()
        final = self.datadir.checkpoint_path(0)
        tmp = final + ".tmp"
        entries: Dict[str, List[int]] = {}
        epochs = self.manager.epochs
        epochs.enter_critical_section()
        try:
            self.last_rows = save_collections(
                tmp, self.collections, fsync=True, entry_lists=entries
            )
        finally:
            epochs.exit_critical_section()
        os.replace(tmp, final)
        fsync_dir(self.datadir.root)
        wal = WriteAheadLog.create(
            self.datadir.wal_path(1), start_lsn=1, fsync_policy=fsync_policy
        )
        manifest = {
            "format": MANIFEST_FORMAT,
            "checkpoint": os.path.basename(final),
            "cut_lsn": 0,
            "wal": os.path.basename(wal.path),
            "entries": entries,
            "rows": self.last_rows,
            **collection_flags(self.collections),
        }
        self.datadir.write_manifest(manifest)
        self.count += 1
        self.last_duration = time.perf_counter() - start
        return manifest, wal
