"""DurableStore: the façade tying collections, WAL and checkpoints together.

A store owns a data directory, the manager + collections living in it,
the active :class:`~repro.durability.wal.WriteAheadLog` segment and a
:class:`~repro.durability.checkpoint.CheckpointManager`.  It installs
itself as every durable collection's ``mutation_log``, so the normal
``add`` / ``remove`` / handle-``setattr`` paths log transparently::

    store = DurableStore.create("state/", snapshot="tpch.smcsnap")
    orders = store.collections["orders"]
    orders.add(orderkey=1, ...)        # applied + logged + fsynced
    store.checkpoint()                 # snapshot, truncate the log
    store.close()

    store = DurableStore.open("state/")   # recover after a crash

Mutation/logging atomicity: durable collections hold the WAL lock
across *apply + append* (see ``Collection.add``), and the checkpointer
holds the same lock for the whole checkpoint, so the snapshot cut is
exact — no mutation can be half in the checkpoint and half in the next
log segment.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.durability.checkpoint import CheckpointManager, DataDir, DataDirError
from repro.durability.recovery import RecoveryReport, recover
from repro.durability.wal import ADD, INTERN, REMOVE, UPDATE, WriteAheadLog
from repro.errors import SmcError
from repro.memory.reference import Ref
from repro.schema.fields import CharField, RefField, VarStringField

#: Default log size that triggers ``maybe_checkpoint`` (bytes).
DEFAULT_CHECKPOINT_BYTES = 16 * 1024 * 1024


class MutationError(SmcError):
    """A malformed or inapplicable mutation op (service: BAD_REQUEST)."""


class DurableStore:
    """A set of collections persisted to a data directory."""

    def __init__(
        self,
        datadir: DataDir,
        collections: Dict[str, Any],
        wal: WriteAheadLog,
        *,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        owns_manager: bool = False,
        report: Optional[RecoveryReport] = None,
    ) -> None:
        self.datadir = datadir
        self.collections = {
            k: v for k, v in collections.items() if not k.startswith("_")
        }
        self.manager = collections["_manager"]
        self._wal = wal
        self.checkpoint_bytes = checkpoint_bytes
        self.report = report
        self._owns_manager = owns_manager
        self._closed = False
        self._ckpt = CheckpointManager(
            self.datadir, self.manager, dict(collections)
        )
        # Log-local string-id table, reset at every checkpoint (string
        # dictionary *codes* are not stable across a reload, log-local
        # sids are — see the wal module docstring).
        self._sids: Dict[str, int] = {}
        # Counters carried across segment rollovers.
        self._closed_records = 0
        self._closed_bytes = 0
        self._closed_fsyncs = 0
        self._closed_batches = 0
        self._attach()

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        data_dir: str,
        collections: Optional[Dict[str, Any]] = None,
        *,
        snapshot: Optional[str] = None,
        columnar: bool = False,
        string_dict: bool = True,
        fsync_policy: str = "commit",
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
    ) -> "DurableStore":
        """Initialize a fresh data directory.

        Seed it from a snapshot file, an existing ``{name: collection}``
        dict (which must include ``"_manager"``), or nothing (an empty
        store; collections then appear via :meth:`apply` ADD records or
        by registering them up front).
        """
        from repro.io.snapshot import load_collections
        from repro.memory.manager import MemoryManager

        if collections is not None and snapshot is not None:
            raise DataDirError("pass either collections or snapshot, not both")
        owns = collections is None
        if snapshot is not None:
            collections = load_collections(
                snapshot, columnar=columnar, string_dict=string_dict
            )
        elif collections is None:
            collections = {"_manager": MemoryManager(string_dict=string_dict)}
        if "_manager" not in collections:
            raise DataDirError("collections must include '_manager'")
        datadir = DataDir(data_dir)
        ckpt = CheckpointManager(
            datadir, collections["_manager"], dict(collections)
        )
        __, wal = ckpt.bootstrap(fsync_policy=fsync_policy)
        return cls(
            datadir,
            collections,
            wal,
            checkpoint_bytes=checkpoint_bytes,
            owns_manager=owns,
        )

    @classmethod
    def open(
        cls,
        data_dir: str,
        *,
        fsync_policy: str = "commit",
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        columnar: Optional[bool] = None,
        string_dict: Optional[bool] = None,
    ) -> "DurableStore":
        """Recover *data_dir* and resume appending after the replayed tail."""
        collections, report = recover(
            data_dir, columnar=columnar, string_dict=string_dict
        )
        # Reopening truncates the torn tail / uncommitted trailing batch
        # recovery skipped, so appends resume at the committed boundary.
        wal = WriteAheadLog.open(report.wal_path, fsync_policy=fsync_policy)
        return cls(
            DataDir(data_dir),
            collections,
            wal,
            checkpoint_bytes=checkpoint_bytes,
            owns_manager=True,
            report=report,
        )

    def _attach(self) -> None:
        # Log records carry the *store key* of a collection (what the
        # checkpoint and manifest are keyed by), which may differ from
        # collection.name when the caller's dict uses its own names.
        self._names: Dict[int, str] = {
            id(coll): name for name, coll in self.collections.items()
        }
        for coll in self.collections.values():
            coll.mutation_log = self
            strdict = getattr(coll, "strdict", None)
            if strdict is not None:
                strdict.on_bind = self._on_strdict_bind

    def attach_mutation_hooks(self) -> None:
        """(Re)install this store as every collection's mutation log.

        A promoted replica calls this: while following it must not log
        its own records (the shipped frames already are the log), but
        once promoted its local mutations become authoritative.
        """
        self._attach()

    def detach_mutation_hooks(self) -> None:
        """Stop logging local mutations (read-replica mode).

        The store stays open — the WAL keeps receiving *shipped* frames
        via ``append_shipped`` — but ``add``/``remove``/``setattr`` on
        the collections no longer append records of their own.
        """
        for coll in self.collections.values():
            if getattr(coll, "mutation_log", None) is self:
                coll.mutation_log = None
            strdict = getattr(coll, "strdict", None)
            if strdict is not None and strdict.on_bind == self._on_strdict_bind:
                strdict.on_bind = None

    def _name_of(self, collection) -> str:
        return self._names.get(id(collection), collection.name)

    # -- the mutation-hook interface (called by Collection/Handle) ------

    def hold(self):
        """The lock durable mutations hold across apply + append."""
        return self._wal.hold()

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def cut_lsn(self) -> int:
        """LSN of the latest checkpoint cut (active segment start - 1)."""
        return self._wal.start_lsn - 1

    @property
    def committed_lsn(self) -> int:
        """Last committed (shippable) LSN of the active segment."""
        return self._wal.committed_lsn

    # -- replication: shipping the committed tail ------------------------

    def read_tail(self, after_lsn: int, max_bytes: int = 4 * 1024 * 1024):
        """Committed records after *after_lsn*, or ``None`` for resync.

        ``None`` means *after_lsn* predates the active segment: the
        intervening records were folded into a checkpoint and their
        segment swept, so a follower at that position must re-bootstrap
        from :meth:`resync_payload`.
        """
        return self._wal.read_tail(after_lsn, max_bytes=max_bytes)

    def resync_payload(self) -> Dict[str, Any]:
        """The current checkpoint + manifest, packaged for a follower.

        Read under the WAL lock so no checkpoint can swap the manifest
        mid-read; a sweep by a *second* checkpoint racing the file read
        is retried (the next attempt sees the newer manifest).
        """
        import base64

        last_exc: Optional[BaseException] = None
        for _ in range(3):
            with self._wal.hold():
                manifest = self.datadir.read_manifest()
                path = os.path.join(self.datadir.root, manifest["checkpoint"])
                try:
                    with open(path, "rb") as fh:
                        snap = fh.read()
                except FileNotFoundError as exc:  # pragma: no cover - race
                    last_exc = exc
                    continue
            return {
                "manifest": manifest,
                "snapshot_b64": base64.b64encode(snap).decode("ascii"),
            }
        raise SmcError(
            f"checkpoint file kept disappearing under resync: {last_exc}"
        )  # pragma: no cover - requires three back-to-back checkpoints

    def log_add(self, collection, entry: int, values: Dict[str, Any]) -> int:
        payload_values = {
            key: self._encode_value(
                collection, collection.layout.by_name[key], value
            )
            for key, value in values.items()
        }
        return self._wal.append(
            ADD,
            {
                "c": self._name_of(collection),
                "s": collection.schema.__name__,
                "e": entry,
                "v": payload_values,
            },
        )

    def log_remove(self, collection, entry: int) -> int:
        return self._wal.append(
            REMOVE, {"c": self._name_of(collection), "e": entry}
        )

    def log_update(
        self, collection, entry: int, field_name: str, value: Any
    ) -> int:
        field = collection.layout.by_name[field_name]
        return self._wal.append(
            UPDATE,
            {
                "c": self._name_of(collection),
                "e": entry,
                "f": field_name,
                "v": self._encode_value(collection, field, value),
            },
        )

    def batch(self):
        """Group-commit scope: one BEGIN/COMMIT pair, one fsync."""
        return self._wal.batch()

    def _encode_value(self, collection, field, value):
        """One field value as its log representation.

        References become ``{"$r": entry}``, non-empty varstrings become
        ``{"$s": sid}`` against the segment's INTERN table, scalars are
        normalized through the field codec so replay writes bit-identical
        raw values (e.g. Decimals pick up their declared scale).
        """
        if isinstance(field, RefField):
            if value is None:
                return None
            ref = value if isinstance(value, Ref) else getattr(value, "ref", None)
            if not isinstance(ref, Ref):
                raise MutationError(
                    f"field {field.name} expects a handle, Ref or None"
                )
            return {"$r": ref.entry}
        if isinstance(field, VarStringField):
            text = "" if value is None else str(value)
            if not text:
                return ""
            return {"$s": self._sid_for(text)}
        if isinstance(field, CharField):
            return str(value)
        from repro.service.protocol import encode_value

        return encode_value(field.from_raw(field.to_raw(value)))

    def _sid_for(self, text: str) -> int:
        with self._wal.hold():
            sid = self._sids.get(text)
            if sid is None:
                sid = len(self._sids) + 1
                self._wal.append(INTERN, {"i": sid, "t": text})
                self._sids[text] = sid
            return sid

    def _on_strdict_bind(self, code: int, text: str) -> None:
        """String-heap hook: a dictionary bound a new string.

        Pre-registers the text in the segment's INTERN table so the ADD
        or UPDATE record about to reference it reuses the sid.  (The
        dictionary *code* is deliberately ignored — it is not stable
        across recovery.)
        """
        del code
        self._sid_for(text)

    # -- service-facing mutation batches --------------------------------

    def apply(self, ops: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Apply a batch of mutation ops with group commit.

        Each op is ``{"op": "add"|"remove"|"update", "collection": name,
        ...}``; ``add`` takes ``values`` (references encoded as
        ``{"$r": entry}``), ``remove`` takes ``entry``, ``update`` takes
        ``entry`` and ``values``.  Returns one result dict per op.  The
        whole batch is one BEGIN/COMMIT unit: a crash mid-batch recovers
        to the state before it.
        """
        if not isinstance(ops, list) or not ops:
            raise MutationError("ops must be a non-empty list")
        results = []
        with self.batch():
            for op in ops:
                results.append(self._apply_op(op))
        return results

    def _apply_op(self, op: Dict[str, Any]) -> Dict[str, Any]:
        if not isinstance(op, dict):
            raise MutationError("each op must be an object")
        kind = op.get("op")
        coll = self.collections.get(str(op.get("collection")))
        if coll is None:
            raise MutationError(
                f"unknown collection {op.get('collection')!r}; "
                f"known: {sorted(self.collections)}"
            )
        if kind == "add":
            decoded = self._decode_op_values(coll, op.get("values") or {})
            handle = coll.add(**decoded)
            return {"entry": handle.ref.entry}
        if kind == "remove":
            handle = self._live_handle(coll, op.get("entry"))
            coll.remove(handle)
            return {"removed": True}
        if kind == "update":
            handle = self._live_handle(coll, op.get("entry"))
            decoded = self._decode_op_values(coll, op.get("values") or {})
            for key, value in decoded.items():
                setattr(handle, key, value)
            return {"updated": len(decoded)}
        raise MutationError(f"unknown mutation op {kind!r}")

    def _decode_op_values(
        self, coll, values: Dict[str, Any]
    ) -> Dict[str, Any]:
        from repro.service.protocol import decode_value

        decoded = {}
        for key, value in values.items():
            field = coll.layout.by_name.get(key)
            if field is None:
                raise MutationError(
                    f"{coll.schema.__name__} has no field {key!r}"
                )
            if isinstance(value, dict) and "$r" in value:
                if not isinstance(field, RefField):
                    raise MutationError(
                        f"field {key!r} is not a reference field"
                    )
                target = coll.target_collection(field)
                decoded[key] = self._live_handle(target, int(value["$r"]))
            else:
                decoded[key] = decode_value(value)
        return decoded

    def _live_handle(self, coll, entry) -> Any:
        """Entry id -> checked live handle of *coll* (client addressing)."""
        try:
            entry = int(entry)
        except (TypeError, ValueError):
            raise MutationError(f"invalid entry id {entry!r}") from None
        if entry < 0:
            raise MutationError(f"invalid entry id {entry}")
        manager = self.manager
        try:
            ref = Ref(manager, entry, manager.table.incarnation(entry))
            if not ref.is_alive:
                raise MutationError(f"entry {entry} is not a live object")
            address = ref.address()
            block = manager.space.block_at(address)
        except MutationError:
            raise
        except Exception as exc:  # noqa: BLE001 - any bad id maps the same
            raise MutationError(
                f"entry {entry} is not a live object ({type(exc).__name__})"
            ) from None
        if block.context_id != coll.context.context_id:
            raise MutationError(
                f"entry {entry} does not belong to collection {coll.name!r}"
            )
        return coll._handle(ref)

    # -- checkpoints ----------------------------------------------------

    def checkpoint(self, translate_entries=None) -> Dict[str, Any]:
        """Write a checkpoint, roll the log, sweep superseded files.

        ``translate_entries`` is forwarded to the checkpoint manager; a
        read replica uses it to record the primary's entry ids in its
        manifest (see ``CheckpointManager.checkpoint``).
        """
        with self._wal.hold():
            old = self._wal
            manifest, new_wal = self._ckpt.checkpoint(
                old, translate_entries=translate_entries
            )
            self._closed_records += old.records
            self._closed_bytes += old.bytes_written
            self._closed_fsyncs += old.fsyncs
            self._closed_batches += old.batches
            self._wal = new_wal
            self._sids.clear()
        return manifest

    def maybe_checkpoint(self) -> bool:
        """Checkpoint when the active segment outgrew the threshold."""
        if self._wal.payload_bytes < self.checkpoint_bytes:
            return False
        self.checkpoint()
        return True

    # -- stats / lifecycle ----------------------------------------------

    def stats(self) -> Dict[str, Any]:
        wal = self._wal
        return {
            "data_dir": self.datadir.root,
            "wal_size_bytes": wal.size,
            "wal_last_lsn": wal.last_lsn,
            "wal_records_total": self._closed_records + wal.records,
            "wal_bytes_total": self._closed_bytes + wal.bytes_written,
            "wal_fsyncs_total": self._closed_fsyncs + wal.fsyncs,
            "wal_batches_total": self._closed_batches + wal.batches,
            "fsync_policy": wal.fsync_policy,
            "checkpoints_total": self._ckpt.count,
            "checkpoint_last_duration": self._ckpt.last_duration,
            "checkpoint_last_rows": self._ckpt.last_rows,
            "recovery_replayed_total": (
                self.report.replayed if self.report else 0
            ),
            "recovery_dropped_tail_bytes": (
                self.report.dropped_tail_bytes if self.report else 0
            ),
        }

    def close(self, checkpoint: bool = False) -> None:
        """Detach hooks, sync and close the log (optionally checkpoint).

        Idempotent: the serving layer may close the store both from the
        shutdown op's teardown thread and from its own cleanup path.
        """
        if self._closed:
            return
        self._closed = True
        if checkpoint:
            self.checkpoint()
        self.detach_mutation_hooks()
        self._wal.close()
        if self._owns_manager:
            self.manager.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DurableStore {self.datadir.root}: "
            f"{len(self.collections)} collections, "
            f"wal at LSN {self._wal.last_lsn}>"
        )
