"""Crash recovery: checkpoint reload + log-tail replay.

``recover(data_dir)`` rebuilds the collections a durable store held at
the moment of the crash:

1. read the MANIFEST (the atomically-replaced commit point);
2. load the checkpoint snapshot into a fresh manager;
3. zip each collection's reloaded rows with the entry-id lists the
   manifest recorded — snapshot load order equals subsequent enumeration
   order, so position *i* of both is the same row — giving the
   ``old entry id -> new handle`` translation map;
4. replay the committed prefix of the active log segment through the
   normal ``add``/``remove``/``setattr`` paths (so secondary indexes and
   string dictionaries are maintained as they were live), updating the
   map as rows are added and removed.

A torn final record (or a trailing batch whose COMMIT never reached
disk) is dropped: the crash interrupted an append that was never
acknowledged.  Interior corruption — a CRC mismatch or LSN gap with
valid records behind it — raises :class:`RecoveryError` naming the LSN,
because skipping it would silently lose acknowledged mutations.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.durability.checkpoint import DataDir
from repro.durability.wal import (
    ADD,
    BEGIN,
    COMMIT,
    INTERN,
    REMOVE,
    UPDATE,
    RecoveryError,
    WalRecord,
    scan_wal,
)


@dataclass
class RecoveryReport:
    """What recovery did (surfaced by ``repro recover`` and metrics)."""

    data_dir: str
    checkpoint: str
    cut_lsn: int
    checkpoint_rows: int
    wal_path: str
    records_scanned: int
    replayed: int
    interned: int
    dropped_tail_bytes: int
    dropped_open_batch: int
    committed_offset: int
    next_lsn: int
    duration: float
    #: ``old entry id -> live handle`` map as of the end of replay.
    #: Replication keeps applying shipped records through it.
    entry_map: Dict[int, Any] = field(default_factory=dict, repr=False)
    #: Log-local string-id table as of the end of replay.
    strings: Dict[int, str] = field(default_factory=dict, repr=False)

    def summary(self) -> str:
        return (
            f"recovered {self.data_dir}: checkpoint {self.checkpoint} "
            f"({self.checkpoint_rows} rows, cut LSN {self.cut_lsn}), "
            f"replayed {self.replayed} of {self.records_scanned} log "
            f"records ({self.interned} interned strings, "
            f"{self.dropped_open_batch} dropped from an open batch, "
            f"{self.dropped_tail_bytes} torn tail bytes) "
            f"in {self.duration * 1000:.1f} ms"
        )


def recover(
    data_dir: str,
    *,
    manager=None,
    columnar: Optional[bool] = None,
    string_dict: Optional[bool] = None,
):
    """Rebuild the collections stored in *data_dir*.

    Returns ``(collections, report)`` where ``collections`` includes the
    ``"_manager"`` key, exactly like ``load_collections``.  Layout and
    encoding default to what the manifest recorded.
    """
    from repro.io.snapshot import load_collections

    start = time.perf_counter()
    dd = DataDir(data_dir)
    manifest = dd.read_manifest()
    if manifest is None:
        raise RecoveryError(
            f"{data_dir} is not an initialized data directory (no MANIFEST)"
        )
    if columnar is None:
        columnar = bool(manifest.get("columnar", False))
    if string_dict is None:
        string_dict = bool(manifest.get("string_dict", True))

    checkpoint_path = os.path.join(dd.root, manifest["checkpoint"])
    try:
        collections = load_collections(
            checkpoint_path,
            manager=manager,
            columnar=columnar,
            string_dict=string_dict,
        )
    except OSError as exc:
        raise RecoveryError(
            f"cannot read checkpoint {checkpoint_path}: {exc}"
        ) from None
    mgr = collections["_manager"]

    # Entry-id translation: manifest order is snapshot write order is
    # reload order is enumeration order.
    entry_map: Dict[int, Any] = {}
    for name, old_entries in manifest["entries"].items():
        coll = collections.get(name)
        if coll is None:
            raise RecoveryError(
                f"manifest lists collection {name!r} but the checkpoint "
                f"does not contain it"
            )
        handles = list(coll)
        if len(handles) != len(old_entries):
            raise RecoveryError(
                f"collection {name!r}: checkpoint reloaded "
                f"{len(handles)} rows but the manifest recorded "
                f"{len(old_entries)} entry ids"
            )
        for old_entry, handle in zip(old_entries, handles):
            entry_map[old_entry] = handle

    wal_path = os.path.join(dd.root, manifest["wal"])
    try:
        scan = scan_wal(wal_path)
    except FileNotFoundError:
        raise RecoveryError(
            f"manifest points at missing log segment {wal_path}"
        ) from None
    if scan.start_lsn != manifest["cut_lsn"] + 1:
        raise RecoveryError(
            f"{wal_path} starts at LSN {scan.start_lsn} but the "
            f"checkpoint was cut at LSN {manifest['cut_lsn']}"
        )

    replayed = interned = 0
    strings: Dict[int, str] = {}
    for rec in scan.committed_records():
        if rec.kind in (BEGIN, COMMIT):
            continue  # batch atomicity is enforced by the committed cut
        if rec.kind == INTERN:
            strings[int(rec.payload["i"])] = rec.payload["t"]
            interned += 1
            continue
        apply_record(collections, mgr, entry_map, strings, rec)
        replayed += 1

    report = RecoveryReport(
        data_dir=dd.root,
        checkpoint=manifest["checkpoint"],
        cut_lsn=int(manifest["cut_lsn"]),
        checkpoint_rows=int(manifest.get("rows", 0)),
        wal_path=wal_path,
        records_scanned=len(scan.records),
        replayed=replayed,
        interned=interned,
        dropped_tail_bytes=scan.torn_bytes,
        dropped_open_batch=scan.open_batch_records,
        committed_offset=scan.committed_offset,
        next_lsn=scan.next_lsn,
        duration=time.perf_counter() - start,
        entry_map=entry_map,
        strings=strings,
    )
    return collections, report


def apply_record(collections, mgr, entry_map, strings, rec: WalRecord) -> None:
    """Re-execute one mutation record against the reloaded collections.

    This is the single apply path shared by crash recovery and live
    replication: a read replica feeds every shipped record through here
    so its in-memory state is rebuilt exactly the way a restart would.
    """
    payload = rec.payload
    name = payload["c"]
    coll = collections.get(name)
    if rec.kind == ADD:
        if coll is None:
            coll = _create_collection(collections, mgr, name, payload["s"])
        values = {
            key: _decode_value(entry_map, strings, rec, value)
            for key, value in payload["v"].items()
        }
        entry_map[int(payload["e"])] = coll.add(**values)
        return
    if coll is None:
        raise RecoveryError(
            f"LSN {rec.lsn}: {rec.kind_name} targets unknown "
            f"collection {name!r}"
        )
    handle = entry_map.get(int(payload["e"]))
    if handle is None:
        raise RecoveryError(
            f"LSN {rec.lsn}: {rec.kind_name} targets entry "
            f"{payload['e']} which is not live at this point of the log"
        )
    if rec.kind == REMOVE:
        coll.remove(handle)
        del entry_map[int(payload["e"])]
        return
    if rec.kind == UPDATE:
        setattr(
            handle,
            payload["f"],
            _decode_value(entry_map, strings, rec, payload["v"]),
        )
        return
    raise RecoveryError(
        f"LSN {rec.lsn}: unknown record kind {rec.kind}"
    )


def _create_collection(collections, mgr, name: str, schema_name: str):
    """A collection first seen in the log tail (created post-checkpoint)."""
    from repro.core.collection import Collection
    from repro.core.columnar import ColumnarCollection
    from repro.schema.tabular import resolve_tabular

    factory = Collection
    for existing_name, existing in collections.items():
        if not existing_name.startswith("_"):
            if isinstance(existing, ColumnarCollection):
                factory = ColumnarCollection
            break
    coll = factory(resolve_tabular(schema_name), manager=mgr, name=name)
    collections[name] = coll
    return coll


def _decode_value(entry_map, strings, rec: WalRecord, value):
    """Decode one logged field value back into add/setattr input."""
    from repro.service.protocol import decode_value

    if isinstance(value, dict):
        if "$r" in value:
            target = entry_map.get(int(value["$r"]))
            if target is None:
                raise RecoveryError(
                    f"LSN {rec.lsn}: reference to entry {value['$r']} "
                    f"which is not live at this point of the log"
                )
            return target
        if "$s" in value:
            sid = int(value["$s"])
            if sid not in strings:
                raise RecoveryError(
                    f"LSN {rec.lsn}: string id {sid} was never interned "
                    f"in this log segment"
                )
            return strings[sid]
    return decode_value(value)
