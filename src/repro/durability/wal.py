"""Write-ahead log: LSN-stamped, CRC32-framed mutation records.

The log is the durability subsystem's source of truth between
checkpoints.  Every mutation of a durable collection appends one record
*before the mutating call returns*; the record carries the collection
name, the object's indirection-table entry (stable for the row's
lifetime, see ``docs/memory_protocol.md``) and the field values, so
:func:`repro.durability.recovery.recover` can re-apply it against a
reloaded checkpoint.

File format (little-endian)::

    header   b"SMCWAL1\\n" | u64 start_lsn
    record   u32 crc32 | u32 payload_len | u64 lsn | u8 kind | payload

The CRC covers ``lsn | kind | payload``.  Payloads are compact JSON
(the service protocol's tagged encoding, so ``Decimal`` and ``date``
values round-trip exactly).  Record kinds:

======  =======  ====================================================
value   name     payload
======  =======  ====================================================
1       BEGIN    ``{"n": batch_seq}`` — opens a group-commit batch
2       COMMIT   ``{"n": batch_seq}`` — closes it; torn batches are
                 dropped whole at recovery (all-or-nothing)
3       ADD      ``{"c", "s", "e", "v"}`` — collection, schema, entry,
                 field values
4       REMOVE   ``{"c", "e"}``
5       UPDATE   ``{"c", "e", "f", "v"}``
6       INTERN   ``{"i": sid, "t": text}`` — binds a log-local string
                 id; later values reference it as ``{"$s": sid}``
======  =======  ====================================================

String values are *not* logged as string-dictionary codes: dictionary
codes are reassigned densely when a checkpoint reloads, so a code
written before a checkpoint would dangle after it.  INTERN records bind
log-local string ids instead, scoped to one log segment (the table
resets at every checkpoint), which still deduplicates repeated values.

Torn-tail contract (see ``docs/durability.md`` for the crash matrix):

* a final record whose frame runs past EOF, or whose CRC fails *and*
  whose frame ends exactly at EOF, is a torn tail — dropped silently
  (the crash happened mid-append, the mutation was never acknowledged);
* a CRC mismatch or LSN discontinuity with further bytes behind it is
  interior corruption — :class:`WalCorruptionError` naming the LSN;
* a trailing BEGIN without its COMMIT is an unacknowledged batch —
  its records are dropped whole and the file is truncated back to the
  last committed boundary before appends resume.
"""

from __future__ import annotations

import contextlib
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import SmcError
from repro.sanitizer import hooks as _san

FILE_MAGIC = b"SMCWAL1\n"
_FILE_HEADER = struct.Struct("<Q")  # start_lsn
FILE_HEADER_SIZE = len(FILE_MAGIC) + _FILE_HEADER.size  # 16

_RECORD_HEADER = struct.Struct("<IIQB")  # crc32, payload_len, lsn, kind
RECORD_HEADER_SIZE = _RECORD_HEADER.size  # 17
_CRC_BODY = struct.Struct("<QB")  # lsn, kind (the CRC'd prefix)

#: Sanity bound on one record's payload (matches the wire protocol's cap).
MAX_RECORD = 64 * 1024 * 1024

BEGIN = 1
COMMIT = 2
ADD = 3
REMOVE = 4
UPDATE = 5
INTERN = 6

KIND_NAMES = {
    BEGIN: "BEGIN",
    COMMIT: "COMMIT",
    ADD: "ADD",
    REMOVE: "REMOVE",
    UPDATE: "UPDATE",
    INTERN: "INTERN",
}

#: fsync policies: every record / every commit boundary / never.
FSYNC_POLICIES = ("always", "commit", "none")

#: Default group-commit buffer capacity: batched frames accumulate in
#: memory up to this many bytes before being pushed to the file in one
#: write (the memory governor may resize it per segment).
DEFAULT_BUFFER_CAPACITY = 256 * 1024


class RecoveryError(SmcError):
    """Raised when a data directory cannot be recovered."""


class WalCorruptionError(RecoveryError):
    """Interior log corruption (CRC/LSN) that recovery must not skip."""

    def __init__(self, message: str, lsn: int, offset: int) -> None:
        super().__init__(message)
        self.lsn = lsn
        self.offset = offset


@dataclass
class WalRecord:
    """One decoded log record."""

    lsn: int
    kind: int
    payload: Dict[str, Any]
    offset: int
    end_offset: int

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"KIND{self.kind}")


@dataclass
class WalScan:
    """Result of scanning one log segment."""

    path: str
    start_lsn: int
    records: List[WalRecord] = field(default_factory=list)
    #: End offset of the last structurally valid record.
    good_offset: int = FILE_HEADER_SIZE
    #: End offset of the durable prefix — excludes a trailing open batch.
    committed_offset: int = FILE_HEADER_SIZE
    #: Number of leading records inside the committed prefix.
    committed_count: int = 0
    #: Torn bytes discarded past ``good_offset``.
    torn_bytes: int = 0
    #: Records discarded because they sit in a trailing open batch.
    open_batch_records: int = 0

    @property
    def next_lsn(self) -> int:
        """First LSN to append after truncating to the committed prefix."""
        if self.committed_count:
            return self.records[self.committed_count - 1].lsn + 1
        return self.start_lsn

    def committed_records(self) -> List[WalRecord]:
        return self.records[: self.committed_count]


def scan_wal(path: str) -> WalScan:
    """Parse a log segment, classifying torn tails vs interior corruption."""
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < FILE_HEADER_SIZE or data[: len(FILE_MAGIC)] != FILE_MAGIC:
        raise WalCorruptionError(
            f"{path} is not an SMC write-ahead log", lsn=0, offset=0
        )
    (start_lsn,) = _FILE_HEADER.unpack_from(data, len(FILE_MAGIC))
    scan = WalScan(path=path, start_lsn=start_lsn)
    size = len(data)
    pos = FILE_HEADER_SIZE
    expected = start_lsn
    while pos < size:
        if size - pos < RECORD_HEADER_SIZE:
            break  # torn header at the tail
        crc, length, lsn, kind = _RECORD_HEADER.unpack_from(data, pos)
        end = pos + RECORD_HEADER_SIZE + length
        if length > MAX_RECORD:
            if end >= size:
                break  # garbage length in a torn tail write
            raise WalCorruptionError(
                f"{path}: record at offset {pos} (LSN {expected}) claims "
                f"an impossible payload of {length} bytes",
                lsn=expected,
                offset=pos,
            )
        if end > size:
            break  # torn final record: frame runs past EOF
        payload = data[pos + RECORD_HEADER_SIZE : end]
        if zlib.crc32(_CRC_BODY.pack(lsn, kind) + payload) != crc:
            if end == size:
                break  # torn final record: partially overwritten tail
            raise WalCorruptionError(
                f"{path}: CRC mismatch at LSN {expected} "
                f"(offset {pos}) with valid records behind it — "
                f"refusing to recover past interior corruption",
                lsn=expected,
                offset=pos,
            )
        if lsn != expected:
            raise WalCorruptionError(
                f"{path}: LSN discontinuity at offset {pos}: "
                f"expected LSN {expected}, found {lsn}",
                lsn=expected,
                offset=pos,
            )
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WalCorruptionError(
                f"{path}: undecodable payload at LSN {expected}: {exc}",
                lsn=expected,
                offset=pos,
            ) from None
        scan.records.append(WalRecord(lsn, kind, decoded, pos, end))
        scan.good_offset = end
        pos = end
        expected += 1
    scan.torn_bytes = size - scan.good_offset

    # Committed prefix: everything up to (and including) the last record
    # that is not part of a trailing open batch.
    in_batch = False
    for i, rec in enumerate(scan.records):
        if rec.kind == BEGIN:
            if in_batch:
                raise WalCorruptionError(
                    f"{path}: nested BEGIN at LSN {rec.lsn}",
                    lsn=rec.lsn,
                    offset=rec.offset,
                )
            in_batch = True
        elif rec.kind == COMMIT:
            if not in_batch:
                raise WalCorruptionError(
                    f"{path}: COMMIT without BEGIN at LSN {rec.lsn}",
                    lsn=rec.lsn,
                    offset=rec.offset,
                )
            in_batch = False
            scan.committed_count = i + 1
            scan.committed_offset = rec.end_offset
        elif not in_batch:
            scan.committed_count = i + 1
            scan.committed_offset = rec.end_offset
    scan.open_batch_records = len(scan.records) - scan.committed_count
    return scan


def dump_records(path: str) -> Iterator[WalRecord]:
    """Yield every structurally valid record (``repro log-dump``)."""
    yield from scan_wal(path).records


class WriteAheadLog:
    """Appender over one log segment, with group commit and fsync policy."""

    def __init__(
        self,
        path: str,
        fh,
        *,
        next_lsn: int,
        offset: int,
        start_lsn: int,
        fsync_policy: str = "commit",
    ) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync_policy!r}; "
                f"choose from {FSYNC_POLICIES}"
            )
        self.path = path
        self._fh = fh
        self._lock = threading.RLock()
        self._next_lsn = next_lsn
        self._offset = offset
        self._synced_offset = offset
        self.start_lsn = start_lsn
        # Committed boundary: the last LSN (and its end offset) that is
        # not inside an open batch.  Replication ships only up to here.
        self._committed_lsn = next_lsn - 1
        self._committed_offset = offset
        # Tail-read cursors: lsn -> file offset of that record, one per
        # follower position, so sequential polls avoid head rescans.
        self._cursors: Dict[int, int] = {}
        self.fsync_policy = fsync_policy
        self._batch_depth = 0
        self._batch_seq = 0
        self._dead = False
        self._crashed = False
        # Group-commit buffer: frames appended inside an open batch park
        # here and reach the file in one write at the commit boundary
        # (or when the buffer hits capacity).  ``_offset`` is the logical
        # end including buffered bytes; ``_committed_offset`` only ever
        # advances after a flush, so ``read_tail`` (which reads the file)
        # never chases bytes that are still in memory.  Disabled under
        # the sanitizer, whose crash points need every byte on disk.
        self._buffer = bytearray()
        self.buffer_capacity = DEFAULT_BUFFER_CAPACITY
        # Lifetime counters (the metrics bridge scrapes these).
        self.records = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.batches = 0
        self.buffered_records = 0
        self.buffer_flushes = 0
        self.buffer_capacity_flushes = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls, path: str, start_lsn: int = 1, fsync_policy: str = "commit"
    ) -> "WriteAheadLog":
        """Create a fresh segment whose first record will carry *start_lsn*."""
        fh = open(path, "xb", buffering=0)
        try:
            fh.write(FILE_MAGIC + _FILE_HEADER.pack(start_lsn))
            os.fsync(fh.fileno())
        except BaseException:
            fh.close()
            with contextlib.suppress(OSError):
                os.unlink(path)
            raise
        fsync_dir(os.path.dirname(path) or ".")
        return cls(
            path,
            fh,
            next_lsn=start_lsn,
            offset=FILE_HEADER_SIZE,
            start_lsn=start_lsn,
            fsync_policy=fsync_policy,
        )

    @classmethod
    def open(cls, path: str, fsync_policy: str = "commit") -> "WriteAheadLog":
        """Reopen a segment for appending.

        Scans the whole file first; a torn tail and any trailing
        uncommitted batch are truncated away so new appends continue
        from the last committed boundary with a contiguous LSN run.
        """
        scan = scan_wal(path)
        fh = open(path, "r+b", buffering=0)
        try:
            if scan.committed_offset < os.path.getsize(path):
                fh.truncate(scan.committed_offset)
                os.fsync(fh.fileno())
            fh.seek(scan.committed_offset)
        except BaseException:
            fh.close()
            raise
        return cls(
            path,
            fh,
            next_lsn=scan.next_lsn,
            offset=scan.committed_offset,
            start_lsn=scan.start_lsn,
            fsync_policy=fsync_policy,
        )

    # -- introspection --------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def committed_lsn(self) -> int:
        """Last LSN outside any open batch (the shippable boundary)."""
        return self._committed_lsn

    @property
    def size(self) -> int:
        return self._offset

    @property
    def payload_bytes(self) -> int:
        """Record bytes appended to this segment (excludes the header)."""
        return self._offset - FILE_HEADER_SIZE

    @property
    def synced_offset(self) -> int:
        return self._synced_offset

    def hold(self):
        """The log's mutation lock (reentrant).

        Durable collections hold it across *apply memory mutation + append
        record* so no mutation can straddle a checkpoint cut; the
        checkpointer holds it for the duration of a checkpoint.
        """
        return self._lock

    # -- appending ------------------------------------------------------

    def append(
        self, kind: int, payload: Dict[str, Any], sync: Optional[bool] = None
    ) -> int:
        """Append one record; returns its LSN.

        ``sync`` overrides the fsync policy for this record; by default
        ``always`` syncs here, ``commit`` syncs unless a batch is open
        (the batch's COMMIT syncs instead), ``none`` never does.
        """
        body = json.dumps(
            payload, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
        with self._lock:
            if self._crashed:
                # Injected-crash model: the process is dead; cleanup
                # paths unwinding through here must not reach the disk.
                return self._next_lsn - 1
            if self._dead:
                raise SmcError(f"write-ahead log {self.path} is closed")
            lsn = self._next_lsn
            crc = zlib.crc32(_CRC_BODY.pack(lsn, kind) + body)
            frame = _RECORD_HEADER.pack(crc, len(body), lsn, kind) + body
            if _san.SANITIZER is not None:
                # Split the write so an injected crash between the halves
                # leaves a genuinely torn record on disk.  Buffering is
                # off under the sanitizer, whose crash points must find
                # every previously appended byte already in the file.
                split = min(len(frame), RECORD_HEADER_SIZE + len(body) // 2)
                self._fh.write(frame[:split])
                self._offset += split
                _san.SANITIZER.event(
                    "wal.append.mid", wal=self, lsn=lsn, kind=kind
                )
                self._fh.write(frame[split:])
                self._offset += len(frame) - split
            else:
                self._buffer += frame
                self._offset += len(frame)
                if self._batch_depth > 0:
                    self.buffered_records += 1
                    if len(self._buffer) >= self.buffer_capacity:
                        self._flush_buffer()
                        self.buffer_capacity_flushes += 1
            self._next_lsn = lsn + 1
            self.records += 1
            self.bytes_written += len(frame)
            # COMMIT is appended after batch() drops the depth to zero,
            # so "depth == 0 here" marks exactly the committed boundary.
            # The flush before the boundary advances keeps the invariant
            # that the file always holds every byte below
            # ``_committed_offset`` (read_tail reads the file, not us).
            if self._batch_depth == 0:
                self._flush_buffer()
                self._committed_lsn = lsn
                self._committed_offset = self._offset
            if sync is None:
                sync = self.fsync_policy == "always" or (
                    self.fsync_policy == "commit" and self._batch_depth == 0
                )
            if sync:
                self.sync()
            return lsn

    def _flush_buffer(self) -> None:
        """Push buffered frames to the file in one write (lock held)."""
        if self._buffer:
            self._fh.write(self._buffer)
            self._buffer.clear()
            self.buffer_flushes += 1

    def set_buffer_capacity(self, capacity: int) -> None:
        """Resize the group-commit buffer ceiling (governor hook).

        Shrinking below the currently buffered bytes flushes immediately
        so the buffer never exceeds its ceiling between appends.
        """
        with self._lock:
            self.buffer_capacity = max(4096, int(capacity))
            if len(self._buffer) >= self.buffer_capacity:
                self._flush_buffer()
                self.buffer_capacity_flushes += 1

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    @contextlib.contextmanager
    def batch(self):
        """Group-commit scope: BEGIN ... records ... COMMIT, one fsync.

        The log's lock is held for the whole batch, so records from other
        threads cannot interleave into it.  BEGIN/COMMIT bound the crash
        atomicity unit: recovery drops a batch whose COMMIT never made it
        to disk.  A Python exception inside the scope still commits the
        records already appended — the in-memory mutations they describe
        have already been applied and cannot be rolled back.
        """
        self._lock.acquire()
        try:
            if self._batch_depth == 0:
                self._batch_seq += 1
                self.batches += 1
                # Open the batch before appending BEGIN, so BEGIN itself
                # defers its fsync to the COMMIT like every batched record.
                self._batch_depth = 1
                self.append(BEGIN, {"n": self._batch_seq})
            else:
                self._batch_depth += 1
            try:
                yield self
            finally:
                self._batch_depth -= 1
                if self._batch_depth == 0:
                    self.append(
                        COMMIT,
                        {"n": self._batch_seq},
                        sync=self.fsync_policy in ("always", "commit"),
                    )
        finally:
            self._lock.release()

    def append_shipped(
        self, lsn: int, kind: int, payload: Dict[str, Any], sync: bool = False
    ) -> int:
        """Append a record shipped from a primary, keeping its LSN.

        Replication is physical log shipping: a follower re-appends the
        primary's committed records verbatim into its own segment, so
        the two logs stay byte-identical.  The shipped LSN must be the
        exact next LSN of this segment — a gap means the follower lost
        its position and must resync.
        """
        with self._lock:
            if not self._crashed and not self._dead and lsn != self._next_lsn:
                raise SmcError(
                    f"shipped record LSN {lsn} does not follow "
                    f"{self.path} (next LSN is {self._next_lsn})"
                )
            return self.append(kind, payload, sync=sync)

    def read_tail(
        self, after_lsn: int, max_bytes: int = 4 * 1024 * 1024
    ) -> Optional[List[WalRecord]]:
        """Committed records with LSN > *after_lsn*, for shipping.

        Returns ``None`` when *after_lsn* predates this segment (the
        records live in a swept-away older segment — the follower must
        resync from the checkpoint).  The result always ends at a batch
        boundary: ``max_bytes`` is a soft cap that only cuts between
        batches, and at least one batch is returned when any is pending,
        so a batch larger than the cap cannot stall a follower.
        """
        with self._lock:
            if self._dead or self._crashed:
                raise SmcError(f"write-ahead log {self.path} is not readable")
            if after_lsn < self.start_lsn - 1:
                return None
            committed = self._committed_lsn
            if after_lsn >= committed:
                return []
            start = self._cursors.get(after_lsn + 1)
            if start is None:
                start = FILE_HEADER_SIZE
            end_offset = self._committed_offset
            with open(self.path, "rb") as fh:
                fh.seek(start)
                data = fh.read(end_offset - start)
        records: List[WalRecord] = []
        pos = 0
        emitted_start: Optional[int] = None
        depth = 0
        while pos < len(data):
            _, length, lsn, kind = _RECORD_HEADER.unpack_from(data, pos)
            end = pos + RECORD_HEADER_SIZE + length
            if lsn > after_lsn:
                payload = json.loads(
                    data[pos + RECORD_HEADER_SIZE : end].decode("utf-8")
                )
                records.append(
                    WalRecord(lsn, kind, payload, start + pos, start + end)
                )
                if emitted_start is None:
                    emitted_start = pos
                if kind == BEGIN:
                    depth = 1
                elif kind == COMMIT:
                    depth = 0
            pos = end
            if (
                records
                and depth == 0
                and pos - (emitted_start or 0) >= max_bytes
            ):
                break
        if records:
            with self._lock:
                self._cursors[records[-1].lsn + 1] = records[-1].end_offset
                self._cursors.pop(after_lsn + 1, None)
                while len(self._cursors) > 16:
                    self._cursors.pop(min(self._cursors))
        return records

    def sync(self) -> None:
        """fsync the segment (fires the ``wal.fsync`` crash point first)."""
        with self._lock:
            if self._crashed:
                return
            self._flush_buffer()
            if _san.SANITIZER is not None:
                _san.SANITIZER.event("wal.fsync", wal=self)
            os.fsync(self._fh.fileno())
            self._synced_offset = self._offset
            self.fsyncs += 1

    def mark_crashed(self) -> None:
        """Injected-crash model: the process died at this instant.

        Every later append/sync/close becomes a silent no-op — a dead
        process writes nothing more, and the exception injected at the
        crash point unwinds through cleanup paths (batch COMMIT, close)
        that must not touch the file behind a torn record.
        """
        with self._lock:
            self._crashed = True

    def simulate_power_loss(self) -> None:
        """Drop unsynced bytes, as a power cut would (fault injection).

        Truncates the file back to the last fsynced offset — everything
        since then only ever reached the page cache — then marks the log
        crashed so the dead store cannot keep appending.
        """
        with self._lock:
            # Buffered frames never reached the page cache at all — a
            # power cut loses them before any unsynced file bytes.
            self._buffer.clear()
            self._fh.truncate(self._synced_offset)
            os.fsync(self._fh.fileno())
            self._crashed = True

    def close(self, sync: bool = True) -> None:
        with self._lock:
            if self._fh.closed:
                return
            if not self._dead and not self._crashed:
                self._flush_buffer()
                if sync:
                    os.fsync(self._fh.fileno())
                    self._synced_offset = self._offset
                    self.fsyncs += 1
            self._fh.close()
            self._dead = True


def fsync_dir(path: str) -> None:
    """fsync a directory so renames/creates inside it are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
