"""Self-managed collections (EDBT 2017) reproduction."""

from repro.core.collection import Collection, default_manager, reset_default_manager
from repro.core.columnar import ColumnarCollection
from repro.core.handle import Handle
from repro.io.snapshot import load_collections, save_collections
from repro.errors import NullReferenceError, SmcError, TabularTypeError
from repro.memory.manager import MemoryManager
from repro.schema import (
    BoolField,
    CharField,
    DateField,
    DecimalField,
    Float64Field,
    Int8Field,
    Int16Field,
    Int32Field,
    Int64Field,
    RefField,
    Tabular,
    VarStringField,
)

__version__ = "1.0.0"

__all__ = [
    "Collection",
    "ColumnarCollection",
    "load_collections",
    "save_collections",
    "Handle",
    "MemoryManager",
    "default_manager",
    "reset_default_manager",
    "NullReferenceError",
    "SmcError",
    "TabularTypeError",
    "Tabular",
    "BoolField",
    "CharField",
    "DateField",
    "DecimalField",
    "Float64Field",
    "Int8Field",
    "Int16Field",
    "Int32Field",
    "Int64Field",
    "RefField",
    "VarStringField",
]
