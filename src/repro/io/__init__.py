"""Persistence: binary snapshots of self-managed collections."""

from repro.io.snapshot import SnapshotError, load_collections, save_collections

__all__ = ["SnapshotError", "load_collections", "save_collections"]
