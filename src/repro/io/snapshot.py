"""Binary snapshots of self-managed collections.

The paper's motivating application "on startup, loads a company's most
recent business data into collections of managed objects" (section 1).
This module provides that startup path: a compact, versioned binary
snapshot of any set of collections, including cross-collection
references, reloadable into a fresh memory manager.

Format (little-endian)::

    magic   b"SMCSNAP1"
    u32     collection count
    per collection:
        str     collection name
        str     schema (tabular class) name
        u32     field count
        per field: str name | str type | i32 meta (width or scale, -1)
        u64     row count
        rows in enumeration order; per field:
            scalars   struct-packed raw representation
            CharField width bytes (NUL padded)
            VarString u32 length + utf-8 bytes
            RefField  str target collection (interned id) + i64 ordinal
                      (-1 for null), ordinal = row position in the target
                      collection's enumeration

After the last collection an optional index section lists each
collection's secondary indexes (``u32 count``, then per index:
collection name | field name | kind).  Loaders recreate and backfill
them, so an index is never silently empty after a reload; files written
before the section existed simply end at the rows and load index-free.

References are rebuilt in a second pass after all rows exist, so cyclic
and forward references round-trip.  Loading validates the stored field
spec against the current tabular class and refuses mismatches.
"""

from __future__ import annotations

import os
import struct
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

from repro.core.collection import Collection
from repro.core.columnar import ColumnarCollection
from repro.errors import SmcError
from repro.memory.manager import MemoryManager
from repro.schema.fields import CharField, DecimalField, Field, RefField, VarStringField
from repro.schema.tabular import resolve_tabular

_MAGIC = b"SMCSNAP1"
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")


class SnapshotError(SmcError):
    """Raised on malformed or incompatible snapshot files."""


def _write_str(fh: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    fh.write(_U32.pack(len(data)))
    fh.write(data)


def _read_str(fh: BinaryIO) -> str:
    (n,) = _U32.unpack(_read_exact(fh, 4))
    return _read_exact(fh, n).decode("utf-8")


def _read_exact(fh: BinaryIO, n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise SnapshotError("truncated snapshot file")
    return data


def _field_meta(field: Field) -> int:
    if isinstance(field, CharField):
        return field.width
    if isinstance(field, DecimalField):
        return field.scale
    return -1


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------


def save_collections(
    path: str,
    collections: Dict[str, Any],
    *,
    fsync: bool = False,
    entry_lists: Optional[Dict[str, List[int]]] = None,
) -> int:
    """Write *collections* (name → collection) to *path*.

    Returns the number of rows written.  Reference fields may only point
    at objects inside one of the saved collections.  With ``fsync`` the
    file is fsynced before closing (checkpoints need the bytes durable
    before the manifest rename can point at them).  ``entry_lists``, if
    given, is filled with each collection's indirection-entry ids in row
    write order — the recovery module zips them with the reloaded rows
    to translate log records.
    """
    named = {
        name: coll
        for name, coll in collections.items()
        if not name.startswith("_")
    }
    # entry index -> (collection name, ordinal), for reference encoding.
    ordinals: Dict[int, Tuple[str, int]] = {}
    handle_lists: Dict[str, list] = {}
    for name, coll in named.items():
        handles = list(coll)
        handle_lists[name] = handles
        for i, handle in enumerate(handles):
            ordinals[handle.ref.entry] = (name, i)
        if entry_lists is not None:
            entry_lists[name] = [h.ref.entry for h in handles]

    rows_written = 0
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(_U32.pack(len(named)))
        for name, coll in named.items():
            layout = coll.layout
            _write_str(fh, name)
            _write_str(fh, coll.schema.__name__)
            fh.write(_U32.pack(len(layout.fields)))
            for f in layout.fields:
                _write_str(fh, f.name)
                _write_str(fh, type(f).__name__)
                fh.write(struct.pack("<i", _field_meta(f)))
            handles = handle_lists[name]
            fh.write(_U64.pack(len(handles)))
            for handle in handles:
                _write_row(fh, layout, handle, ordinals)
                rows_written += 1
        # Trailing index section (old loaders stop at the rows).
        specs = [
            (name, field_name, kind)
            for name, coll in named.items()
            for field_name, kind in coll.index_specs()
        ]
        fh.write(_U32.pack(len(specs)))
        for name, field_name, kind in specs:
            _write_str(fh, name)
            _write_str(fh, field_name)
            _write_str(fh, kind)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    return rows_written


def _write_row(fh: BinaryIO, layout, handle, ordinals) -> None:
    for f in layout.fields:
        if isinstance(f, RefField):
            target = getattr(handle, f.name)
            if target is None:
                _write_str(fh, "")
                fh.write(_I64.pack(-1))
            else:
                entry = target.ref.entry
                located = ordinals.get(entry)
                if located is None:
                    raise SnapshotError(
                        f"reference field {f.name} points outside the "
                        f"snapshotted collections"
                    )
                _write_str(fh, located[0])
                fh.write(_I64.pack(located[1]))
        elif isinstance(f, VarStringField):
            data = getattr(handle, f.name).encode("utf-8")
            fh.write(_U32.pack(len(data)))
            fh.write(data)
        elif isinstance(f, CharField):
            data = getattr(handle, f.name).encode("utf-8")
            fh.write(data.ljust(f.width, b"\x00"))
        else:
            fh.write(f._struct.pack(f.to_raw(getattr(handle, f.name))))


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def load_collections(
    path: str,
    manager: Optional[MemoryManager] = None,
    columnar: bool = False,
    string_dict: bool = True,
    shm: bool = False,
    memory_budget: Optional[int] = None,
    block_shift: Optional[int] = None,
) -> Dict[str, Any]:
    """Load a snapshot into fresh collections on *manager*.

    Returns name → collection (plus ``"_manager"``).  Tabular classes are
    resolved by name through the schema registry and validated against
    the stored field specification.  Snapshots store decoded text, so a
    file written with dictionary encoding on reloads fine with it off
    (and vice versa); ``string_dict``, ``shm`` (shared-memory block
    buffers, for the process executor), ``memory_budget`` (attach a
    pager keeping the block pool under a byte budget) and ``block_shift``
    (log2 block size) only shape the fresh manager and are ignored when
    an explicit *manager* is supplied.
    """
    if manager is None:
        kwargs: Dict[str, Any] = dict(
            string_dict=string_dict, shm=shm, memory_budget=memory_budget
        )
        if block_shift is not None:
            kwargs["block_shift"] = block_shift
        manager = MemoryManager(**kwargs)
    factory = ColumnarCollection if columnar else Collection
    # Tabular classes are resolved by name: user-defined classes must be
    # imported before loading.  The built-in TPC-H schema registers here
    # so snapshots written by the CLI always reload.
    import repro.tpch.schema  # noqa: F401

    with open(path, "rb") as fh:
        if _read_exact(fh, len(_MAGIC)) != _MAGIC:
            raise SnapshotError(f"{path} is not an SMC snapshot")
        (n_collections,) = _U32.unpack(_read_exact(fh, 4))
        collections: Dict[str, Any] = {}
        pending_refs: List[Tuple[Any, int, str, str, int]] = []
        handles_by_name: Dict[str, list] = {}

        for __ in range(n_collections):
            name = _read_str(fh)
            schema_name = _read_str(fh)
            schema = resolve_tabular(schema_name)
            layout = schema.__layout__
            (n_fields,) = _U32.unpack(_read_exact(fh, 4))
            spec = []
            for __f in range(n_fields):
                fname = _read_str(fh)
                ftype = _read_str(fh)
                (meta,) = struct.unpack("<i", _read_exact(fh, 4))
                spec.append((fname, ftype, meta))
            expected = [
                (f.name, type(f).__name__, _field_meta(f))
                for f in layout.fields
            ]
            if spec != expected:
                raise SnapshotError(
                    f"snapshot schema for {schema_name} does not match the "
                    f"current tabular class: {spec} != {expected}"
                )
            coll = factory(schema, manager=manager, name=name)
            collections[name] = coll
            handles = []
            (n_rows,) = _U64.unpack(_read_exact(fh, 8))
            for row_idx in range(n_rows):
                values: Dict[str, Any] = {}
                for f in layout.fields:
                    if isinstance(f, RefField):
                        target_name = _read_str(fh)
                        (ordinal,) = _I64.unpack(_read_exact(fh, 8))
                        if ordinal >= 0:
                            pending_refs.append(
                                (coll, row_idx, f.name, target_name, ordinal)
                            )
                    elif isinstance(f, VarStringField):
                        (n,) = _U32.unpack(_read_exact(fh, 4))
                        values[f.name] = _read_exact(fh, n).decode("utf-8")
                    elif isinstance(f, CharField):
                        raw = _read_exact(fh, f.width)
                        values[f.name] = raw.rstrip(b"\x00 ").decode("utf-8")
                    else:
                        (raw,) = f._struct.unpack(
                            _read_exact(fh, f._struct.size)
                        )
                        values[f.name] = f.from_raw(raw)
                handles.append(coll.add(**values))
            handles_by_name[name] = handles

        # Second pass: resolve references (forward and cyclic included).
        for coll, row_idx, field_name, target_name, ordinal in pending_refs:
            target_handles = handles_by_name.get(target_name)
            if target_handles is None or ordinal >= len(target_handles):
                raise SnapshotError(
                    f"dangling reference {field_name} -> "
                    f"{target_name}[{ordinal}]"
                )
            handle = handles_by_name[coll.name][row_idx]
            setattr(handle, field_name, target_handles[ordinal])

        # Optional trailing index section: recreate secondary indexes so
        # they are backfilled from the reloaded rows (a loaded collection
        # must never have a silently empty index).  Pre-section files end
        # right here, which reads as zero bytes.
        head = fh.read(4)
        if head:
            if len(head) != 4:
                raise SnapshotError("truncated index section")
            (n_indexes,) = _U32.unpack(head)
            for __ in range(n_indexes):
                coll_name = _read_str(fh)
                field_name = _read_str(fh)
                kind = _read_str(fh)
                coll = collections.get(coll_name)
                if coll is None:
                    raise SnapshotError(
                        f"index section names unknown collection "
                        f"{coll_name!r}"
                    )
                if kind == "hash":
                    coll.create_index(field_name)
                elif kind == "sorted":
                    coll.create_sorted_index(field_name)
                else:
                    raise SnapshotError(f"unknown index kind {kind!r}")

    collections["_manager"] = manager
    return collections
