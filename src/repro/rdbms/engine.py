"""Physical operators of the column-store engine.

A deliberately small but real set of vectorised operators — selection,
hash join, grouped aggregation, top-k — out of which the TPC-H plans in
:mod:`repro.rdbms.queries` are composed.  Joins are *value-based* (key
columns hashed into int64 → row-id maps), in contrast to the SMC engines'
reference-based joins; this is exactly the contrast the paper's Figure 13
evaluates.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdbms.table import ColumnTable


def select(
    table: ColumnTable,
    rows: Optional[np.ndarray],
    col: str,
    op: str,
    value: Any,
) -> np.ndarray:
    """Filter *rows* (row-id array; None = all) on one column predicate."""
    raw = table.encode_value(col, value)
    values = table.column(col, rows)
    ops: Dict[str, Callable] = {
        "==": np.equal,
        "!=": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }
    mask = ops[op](values, raw)
    base = np.arange(table.row_count) if rows is None else rows
    return base[mask]


def select_in(
    table: ColumnTable, rows: Optional[np.ndarray], col: str, raw_values: np.ndarray
) -> np.ndarray:
    values = table.column(col, rows)
    mask = np.isin(values, raw_values)
    base = np.arange(table.row_count) if rows is None else rows
    return base[mask]


#: Plan-time toggle for the adaptive build-side choice in
#: :func:`hash_join`.  The planner ablation (``--no-planner``) turns it
#: off, forcing the declared build side (hash the unique-key side), which
#: is what every hand-written plan did before the cost-based planner.
ADAPTIVE_JOINS = True

#: Lifetime join decisions, scraped into benchmark/service stats.
JOIN_STATS = {"joins": 0, "build_unique_side": 0, "build_many_side": 0}


def set_adaptive_joins(flag: bool) -> bool:
    """Toggle adaptive build-side choice; returns the previous setting."""
    global ADAPTIVE_JOINS
    previous = ADAPTIVE_JOINS
    ADAPTIVE_JOINS = bool(flag)
    return previous


def hash_join(
    unique_keys: np.ndarray,
    unique_rows: np.ndarray,
    many_keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """PK hash join with cost-based build-side choice.

    *unique_keys* carries each key at most once (a primary key side);
    *unique_rows* is any int64 payload aligned with it (row ids or
    positions).  Returns ``(unique_payload, many_positions)`` matched
    pairs ordered by the many side's position — the iteration order every
    hand-written plan uses — so the output is identical no matter which
    side was hashed.

    With :data:`ADAPTIVE_JOINS` on, the smaller input is hashed: when the
    many side (already filtered by earlier predicates) is smaller than
    the unique side, hashing it avoids materialising a dictionary over
    the large unique input and turns the join into a probe-by-scan of the
    unique column.  The ablation always hashes the unique side.
    """
    JOIN_STATS["joins"] += 1
    if ADAPTIVE_JOINS and len(many_keys) < len(unique_keys):
        JOIN_STATS["build_many_side"] += 1
        built: Dict[int, List[int]] = {}
        for pos, key in enumerate(many_keys.tolist()):
            bucket = built.get(key)
            if bucket is None:
                built[key] = [pos]
            else:
                bucket.append(pos)
        out_u: List[int] = []
        out_m: List[int] = []
        get = built.get
        for key, payload in zip(unique_keys.tolist(), unique_rows.tolist()):
            positions = get(key)
            if positions is not None:
                for pos in positions:
                    out_u.append(payload)
                    out_m.append(pos)
        many_pos = np.asarray(out_m, dtype=np.int64)
        order = np.argsort(many_pos, kind="stable")
        return np.asarray(out_u, dtype=np.int64)[order], many_pos[order]
    JOIN_STATS["build_unique_side"] += 1
    built_unique = dict(zip(unique_keys.tolist(), unique_rows.tolist()))
    out_u = []
    out_m = []
    get = built_unique.get
    for pos, key in enumerate(many_keys.tolist()):
        payload = get(key)
        if payload is not None:
            out_u.append(payload)
            out_m.append(pos)
    return (
        np.asarray(out_u, dtype=np.int64),
        np.asarray(out_m, dtype=np.int64),
    )


def build_hash(keys: np.ndarray, row_ids: np.ndarray) -> Dict[int, List[int]]:
    """Build side of a hash join: key -> row ids (supports duplicates)."""
    table: Dict[int, List[int]] = {}
    for key, rid in zip(keys.tolist(), row_ids.tolist()):
        bucket = table.get(key)
        if bucket is None:
            table[key] = [rid]
        else:
            bucket.append(rid)
    return table


def build_hash_unique(keys: np.ndarray, row_ids: np.ndarray) -> Dict[int, int]:
    """Build side for unique keys (primary keys)."""
    return dict(zip(keys.tolist(), row_ids.tolist()))


def probe_hash_unique(
    probe_keys: np.ndarray,
    probe_rows: np.ndarray,
    built: Dict[int, int],
) -> Tuple[np.ndarray, np.ndarray]:
    """Probe side of a PK hash join: returns matched (probe, build) rows."""
    out_probe: List[int] = []
    out_build: List[int] = []
    get = built.get
    for key, rid in zip(probe_keys.tolist(), probe_rows.tolist()):
        match = get(key)
        if match is not None:
            out_probe.append(rid)
            out_build.append(match)
    return (
        np.asarray(out_probe, dtype=np.int64),
        np.asarray(out_build, dtype=np.int64),
    )


def semi_join(
    probe_keys: np.ndarray, probe_rows: np.ndarray, key_set: set
) -> np.ndarray:
    """Probe rows whose key appears in *key_set* (EXISTS)."""
    mask = np.fromiter(
        (k in key_set for k in probe_keys.tolist()),
        dtype=bool,
        count=len(probe_keys),
    )
    return probe_rows[mask]


class GroupAggregator:
    """Grouped aggregation over raw arrays with exact int accumulation."""

    def __init__(self, agg_specs: Sequence[Tuple[str, str]]) -> None:
        #: (name, kind) where kind in sum/count/avg/min/max
        self.specs = list(agg_specs)
        self.groups: Dict[Any, list] = {}

    def absorb(
        self,
        keys: Sequence[np.ndarray],
        values: Sequence[Optional[np.ndarray]],
    ) -> None:
        """Add one batch: key arrays + one value array per aggregate."""
        n = len(keys[0]) if keys else (len(values[0]) if values and values[0] is not None else 0)
        if n == 0:
            return
        if keys:
            if len(keys) == 1:
                uniq, inverse = np.unique(keys[0], return_inverse=True)
                uniq_keys = [(k,) for k in uniq.tolist()]
            else:
                rec = np.rec.fromarrays(list(keys))
                uniq, inverse = np.unique(rec, return_inverse=True)
                uniq_keys = [tuple(u) for u in uniq.tolist()]
        else:
            uniq_keys = [()]
            inverse = np.zeros(n, dtype=np.int64)
        counts = np.bincount(inverse, minlength=len(uniq_keys))

        partials: List[List[Any]] = [[] for __ in uniq_keys]
        for (name, kind), vals in zip(self.specs, values):
            if kind == "count":
                for g in range(len(uniq_keys)):
                    partials[g].append(int(counts[g]))
                continue
            assert vals is not None, f"aggregate {name} needs values"
            if kind in ("sum", "avg"):
                acc_dtype = np.int64 if vals.dtype.kind in "iu" else np.float64
                sums = np.zeros(len(uniq_keys), dtype=acc_dtype)
                np.add.at(sums, inverse, vals)
                for g in range(len(uniq_keys)):
                    partials[g].append((sums[g].item(), int(counts[g])))
            elif kind == "min":
                out = np.full(len(uniq_keys), np.iinfo(np.int64).max, dtype=vals.dtype)
                np.minimum.at(out, inverse, vals)
                for g in range(len(uniq_keys)):
                    partials[g].append(out[g].item())
            elif kind == "max":
                out = np.full(len(uniq_keys), np.iinfo(np.int64).min, dtype=vals.dtype)
                np.maximum.at(out, inverse, vals)
                for g in range(len(uniq_keys)):
                    partials[g].append(out[g].item())

        for g, key in enumerate(uniq_keys):
            acc = self.groups.get(key)
            if acc is None:
                self.groups[key] = [
                    list(v) if isinstance(v, tuple) else v for v in partials[g]
                ]
            else:
                for i, (name_kind, value) in enumerate(zip(self.specs, partials[g])):
                    kind = name_kind[1]
                    if kind in ("sum", "avg"):
                        acc[i][0] += value[0]
                        acc[i][1] += value[1]
                    elif kind == "count":
                        acc[i] += value
                    elif kind == "min":
                        acc[i] = min(acc[i], value)
                    elif kind == "max":
                        acc[i] = max(acc[i], value)

    def results(self) -> Dict[Any, list]:
        """Finished groups: sums flattened, avgs as (total, count) pairs."""
        out: Dict[Any, list] = {}
        for key, acc in self.groups.items():
            cells = []
            for (name, kind), cell in zip(self.specs, acc):
                if kind == "sum":
                    cells.append(cell[0])
                elif kind == "avg":
                    cells.append((cell[0], cell[1]))
                else:
                    cells.append(cell)
            out[key] = cells
        return out


def decimal_of(raw: int, scale: int = 2) -> Decimal:
    return Decimal(int(raw)).scaleb(-scale)


def top_k_rows(rows: List[tuple], order: Sequence[Tuple[int, bool]], k: Optional[int]) -> List[tuple]:
    """Sort by (column index, desc) items, then truncate."""
    for idx, desc in reversed(list(order)):
        rows.sort(key=lambda r, i=idx: r[i], reverse=desc)
    return rows if k is None else rows[:k]
