"""Column-store RDBMS comparator (SQL Server stand-in)."""

from repro.rdbms.table import ColumnTable

__all__ = ["ColumnTable"]
