"""Column-store tables for the RDBMS comparator.

The paper compares SMCs against SQL Server 2014's compressed in-memory
column store with clustered indexes on ``shipdate`` and ``orderdate``
(section 7, Figure 13).  That system is closed source, so the repo ships
the closest open equivalent exercising the same code paths: NumPy column
arrays with dictionary-encoded strings, value-based hash joins, and
clustered sort indexes usable for range pruning.

Storage conventions match the SMC raw representation so results are
directly comparable: decimals as scaled int64, dates as int32 days,
fixed strings dictionary-encoded to int32 codes.
"""

from __future__ import annotations

import datetime as _dt
from decimal import Decimal
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.schema.fields import date_to_days, days_to_date


class ColumnEncoder:
    """Per-column raw encoding used at load time."""

    @staticmethod
    def encode(values: Sequence[Any]) -> Tuple[np.ndarray, Optional[List[str]]]:
        """Encode a python column; returns (array, dictionary-or-None)."""
        first = next((v for v in values if v is not None), None)
        if isinstance(first, Decimal):
            return (
                np.array(
                    [int(v.scaleb(2).to_integral_value()) for v in values],
                    dtype=np.int64,
                ),
                None,
            )
        if isinstance(first, _dt.date):
            return (
                np.array([date_to_days(v) for v in values], dtype=np.int32),
                None,
            )
        if isinstance(first, str):
            vocab: Dict[str, int] = {}
            codes = np.empty(len(values), dtype=np.int32)
            for i, v in enumerate(values):
                code = vocab.get(v)
                if code is None:
                    code = len(vocab)
                    vocab[v] = code
                codes[i] = code
            return codes, list(vocab)
        if isinstance(first, float):
            return np.array(values, dtype=np.float64), None
        return np.array(values, dtype=np.int64), None


class ColumnTable:
    """One dictionary-encoded column-store table."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.columns: Dict[str, np.ndarray] = {}
        self.dictionaries: Dict[str, List[str]] = {}
        self._vocab_index: Dict[str, Dict[str, int]] = {}
        self.row_count = 0
        #: clustered sort index: column -> permutation sorting the column
        self.clustered: Dict[str, np.ndarray] = {}

    @classmethod
    def from_rows(
        cls, name: str, rows: Sequence[Dict[str, Any]], columns: Iterable[str]
    ) -> "ColumnTable":
        table = cls(name)
        table.row_count = len(rows)
        for col in columns:
            values = [row[col] for row in rows]
            array, vocab = ColumnEncoder.encode(values)
            table.columns[col] = array
            if vocab is not None:
                table.dictionaries[col] = vocab
                table._vocab_index[col] = {v: i for i, v in enumerate(vocab)}
        return table

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------

    def encode_value(self, col: str, value: Any) -> Any:
        """Convert a literal to the column's raw representation."""
        if col in self.dictionaries:
            code = self._vocab_index[col].get(str(value))
            return -1 if code is None else code
        if isinstance(value, Decimal):
            return int(value.scaleb(2).to_integral_value())
        if isinstance(value, _dt.date):
            return date_to_days(value)
        if isinstance(value, float) and self.columns[col].dtype.kind == "i":
            return round(value * 100)
        return value

    def decode_value(self, col: str, raw: Any, kind: str = "auto") -> Any:
        if col in self.dictionaries:
            return self.dictionaries[col][int(raw)]
        if kind == "decimal":
            return Decimal(int(raw)).scaleb(-2)
        if kind == "date":
            return days_to_date(int(raw))
        return raw

    def string_codes_where(self, col: str, pred) -> np.ndarray:
        """Codes of dictionary entries satisfying *pred* (string predicate)."""
        vocab = self.dictionaries[col]
        return np.array(
            [i for i, v in enumerate(vocab) if pred(v)], dtype=np.int32
        )

    # ------------------------------------------------------------------
    # Clustered indexes
    # ------------------------------------------------------------------

    def create_clustered_index(self, col: str) -> None:
        """Sort permutation over *col*, used for range pruning.

        Models SQL Server's clustered index: range predicates over the
        indexed column resolve to a contiguous run of the permutation.
        """
        self.clustered[col] = np.argsort(self.columns[col], kind="stable")

    def range_scan(
        self, col: str, lo: Optional[Any], hi: Optional[Any],
        lo_open: bool = False, hi_open: bool = False,
    ) -> np.ndarray:
        """Row ids with ``lo <= col <= hi`` using the clustered index.

        ``lo_open`` / ``hi_open`` make the corresponding bound strict.
        Falls back to a full-column comparison when no index exists.
        """
        values = self.columns[col]
        perm = self.clustered.get(col)
        if perm is None:
            mask = np.ones(self.row_count, dtype=bool)
            if lo is not None:
                mask &= (values > lo) if lo_open else (values >= lo)
            if hi is not None:
                mask &= (values < hi) if hi_open else (values <= hi)
            return np.nonzero(mask)[0]
        ordered = values[perm]
        left = 0
        right = self.row_count
        if lo is not None:
            left = int(np.searchsorted(ordered, lo, side="right" if lo_open else "left"))
        if hi is not None:
            right = int(np.searchsorted(ordered, hi, side="left" if hi_open else "right"))
        return perm[left:right]

    # ------------------------------------------------------------------

    def column(self, col: str, rows: Optional[np.ndarray] = None) -> np.ndarray:
        array = self.columns[col]
        return array if rows is None else array[rows]

    def memory_bytes(self) -> int:
        total = sum(a.nbytes for a in self.columns.values())
        total += sum(len(v) * 24 for v in self.dictionaries.values())
        total += sum(a.nbytes for a in self.clustered.values())
        return total

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ColumnTable {self.name}: {self.row_count} rows x {len(self.columns)} cols>"
