"""Hand-written physical plans for the TPC-H queries on the column store.

These play the role of SQL Server's query plans in the paper's Figure 13:
clustered-index range scans on ``shipdate`` / ``orderdate``, value-based
hash joins on the key columns, vectorised grouped aggregation.  The
returned ``(columns, rows)`` pairs decode to the same Python values as
the SMC engines, so results are directly comparable in tests.

Q1–Q6 are the paper's evaluation set (Figure 13); Q7/Q10/Q12/Q14 extend
the comparator to the repo's extra queries for cross-checking.
"""

from __future__ import annotations

import datetime as _dt
from decimal import Decimal
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.rdbms import engine as E
from repro.rdbms.table import ColumnTable
from repro.schema.fields import date_to_days, days_to_date

Database = Dict[str, ColumnTable]
PlanResult = Tuple[List[str], List[tuple]]


def _dec(raw) -> Decimal:
    return Decimal(int(raw)).scaleb(-2)


def q1(db: Database, params: Dict[str, Any]) -> PlanResult:
    li = db["lineitem"]
    rows = li.range_scan("shipdate", None, date_to_days(params["q1_date"]))
    flag = li.column("returnflag", rows)
    status = li.column("linestatus", rows)
    qty = li.column("quantity", rows).astype(np.int64)
    price = li.column("extendedprice", rows).astype(np.int64)
    disc = li.column("discount", rows).astype(np.int64)
    tax = li.column("tax", rows).astype(np.int64)
    disc_price = price * (100 - disc)  # scale 4
    charge = disc_price * (100 + tax)  # scale 6

    agg = E.GroupAggregator(
        [
            ("sum_qty", "sum"),
            ("sum_base_price", "sum"),
            ("sum_disc_price", "sum"),
            ("sum_charge", "sum"),
            ("avg_qty", "avg"),
            ("avg_price", "avg"),
            ("avg_disc", "avg"),
            ("count_order", "count"),
        ]
    )
    agg.absorb(
        [flag, status],
        [qty, price, disc_price, charge, qty, price, disc, None],
    )
    out = []
    for (f, s), acc in agg.results().items():
        out.append(
            (
                li.decode_value("returnflag", f),
                li.decode_value("linestatus", s),
                _dec(acc[0]),
                _dec(acc[1]),
                Decimal(acc[2]).scaleb(-4),
                Decimal(acc[3]).scaleb(-6),
                Decimal(acc[4][0]) / acc[4][1] / 100,
                Decimal(acc[5][0]) / acc[5][1] / 100,
                Decimal(acc[6][0]) / acc[6][1] / 100,
                acc[7],
            )
        )
    columns = [
        "returnflag",
        "linestatus",
        "sum_qty",
        "sum_base_price",
        "sum_disc_price",
        "sum_charge",
        "avg_qty",
        "avg_price",
        "avg_disc",
        "count_order",
    ]
    return columns, E.top_k_rows(out, [(0, False), (1, False)], None)


def q2(db: Database, params: Dict[str, Any]) -> PlanResult:
    part, supplier, nation, region, partsupp = (
        db["part"],
        db["supplier"],
        db["nation"],
        db["region"],
        db["partsupp"],
    )
    # Region -> nations in region.
    rk = E.select(region, None, "name", "==", params["q2_region"])
    region_keys = set(region.column("regionkey", rk).tolist())
    nmask = np.isin(nation.column("regionkey"), list(region_keys))
    nation_rows = np.nonzero(nmask)[0]
    nation_keys = set(nation.column("nationkey", nation_rows).tolist())
    nation_name = dict(
        zip(
            nation.column("nationkey", nation_rows).tolist(),
            (
                nation.decode_value("name", c)
                for c in nation.column("name", nation_rows)
            ),
        )
    )
    # Suppliers in the region.
    smask = np.isin(supplier.column("nationkey"), list(nation_keys))
    supp_rows = np.nonzero(smask)[0]
    supp_info = {
        int(k): (int(r))
        for k, r in zip(supplier.column("suppkey", supp_rows).tolist(), supp_rows)
    }
    # Qualifying parts: size = N and type like '%BRASS'.
    from repro.tpch.queries import Q2_TYPE_SUFFIX

    prows = E.select(part, None, "size", "==", params["q2_size"])
    type_codes = part.string_codes_where(
        "type", lambda t: Q2_TYPE_SUFFIX in t
    )
    prows = E.select_in(part, prows, "type", type_codes)
    part_keys = set(part.column("partkey", prows).tolist())
    part_row_of = dict(zip(part.column("partkey", prows).tolist(), prows.tolist()))

    # Qualifying partsupps + min cost per part.
    ps_part = partsupp.column("partkey")
    ps_supp = partsupp.column("suppkey")
    ps_cost = partsupp.column("supplycost")
    min_cost: Dict[int, int] = {}
    qualifying: List[int] = []
    for i in range(len(partsupp)):
        pk = int(ps_part[i])
        if pk not in part_keys or int(ps_supp[i]) not in supp_info:
            continue
        qualifying.append(i)
        cost = int(ps_cost[i])
        cur = min_cost.get(pk)
        if cur is None or cost < cur:
            min_cost[pk] = cost
    out = []
    for i in qualifying:
        pk = int(ps_part[i])
        if int(ps_cost[i]) != min_cost[pk]:
            continue
        srow = supp_info[int(ps_supp[i])]
        out.append(
            (
                _dec(supplier.column("acctbal")[srow]),
                supplier.decode_value("name", supplier.column("name")[srow]),
                nation_name[int(supplier.column("nationkey")[srow])],
                pk,
                part.decode_value("mfgr", part.column("mfgr")[part_row_of[pk]]),
            )
        )
    columns = ["acctbal", "s_name", "n_name", "partkey", "mfgr"]
    return columns, E.top_k_rows(
        out, [(0, True), (2, False), (1, False), (3, False)], 100
    )


def q3(db: Database, params: Dict[str, Any]) -> PlanResult:
    customer, orders, li = db["customer"], db["orders"], db["lineitem"]
    date = date_to_days(params["q3_date"])
    crows = E.select(customer, None, "mktsegment", "==", params["q3_segment"])
    cust_keys = set(customer.column("custkey", crows).tolist())
    # orders.orderdate < date via the clustered index.
    orows = orders.range_scan("orderdate", None, date, hi_open=True)
    okeys = orders.column("orderkey", orows)
    ocust = orders.column("custkey", orows)
    sel = np.fromiter(
        (int(c) in cust_keys for c in ocust), dtype=bool, count=len(ocust)
    )
    orows = orows[sel]
    qual_keys = orders.column("orderkey", orows)
    qual_date = orders.column("orderdate", orows)
    qual_prio = orders.column("shippriority", orows)
    # lineitem.shipdate > date via the clustered index.
    lrows = li.range_scan("shipdate", date, None, lo_open=True)
    lkeys = li.column("orderkey", lrows)
    price = li.column("extendedprice", lrows).astype(np.int64)
    disc = li.column("discount", lrows).astype(np.int64)
    revenue = price * (100 - disc)  # scale 4
    opos, lpos = E.hash_join(qual_keys, np.arange(len(orows)), lkeys)
    groups: Dict[int, int] = {}
    info: Dict[int, Tuple[int, int]] = {}
    for po, pl in zip(opos.tolist(), lpos.tolist()):
        k = int(qual_keys[po])
        if k not in groups:
            groups[k] = 0
            info[k] = (int(qual_date[po]), int(qual_prio[po]))
        groups[k] += int(revenue[pl])
    out = [
        (
            k,
            days_to_date(info[k][0]),
            info[k][1],
            Decimal(v).scaleb(-4),
        )
        for k, v in groups.items()
    ]
    columns = ["orderkey", "orderdate", "shippriority", "revenue"]
    return columns, E.top_k_rows(out, [(3, True), (1, False)], 10)


def q4(db: Database, params: Dict[str, Any]) -> PlanResult:
    orders, li = db["orders"], db["lineitem"]
    lo = date_to_days(params["q4_date"])
    hi = date_to_days(params["q4_date_hi"])
    orows = orders.range_scan("orderdate", lo, hi, hi_open=True)
    # EXISTS lineitem with commitdate < receiptdate.
    commit = li.column("commitdate")
    receipt = li.column("receiptdate")
    late = np.nonzero(commit < receipt)[0]
    late_orders = set(li.column("orderkey", late).tolist())
    okeys = orders.column("orderkey", orows)
    orows = E.semi_join(okeys, orows, late_orders)
    prio = orders.column("orderpriority", orows)
    agg = E.GroupAggregator([("order_count", "count")])
    agg.absorb([prio], [None])
    out = [
        (orders.decode_value("orderpriority", p), acc[0])
        for (p,), acc in agg.results().items()
    ]
    return ["orderpriority", "order_count"], E.top_k_rows(out, [(0, False)], None)


def q5(db: Database, params: Dict[str, Any]) -> PlanResult:
    region, nation, supplier, customer, orders, li = (
        db["region"],
        db["nation"],
        db["supplier"],
        db["customer"],
        db["orders"],
        db["lineitem"],
    )
    rk = E.select(region, None, "name", "==", params["q5_region"])
    region_keys = set(region.column("regionkey", rk).tolist())
    nmask = np.isin(nation.column("regionkey"), list(region_keys))
    nrows = np.nonzero(nmask)[0]
    nation_name = {
        int(k): nation.decode_value("name", c)
        for k, c in zip(
            nation.column("nationkey", nrows).tolist(),
            nation.column("name", nrows).tolist(),
        )
    }
    supp_nation = {
        int(k): int(n)
        for k, n in zip(
            supplier.column("suppkey").tolist(),
            supplier.column("nationkey").tolist(),
        )
        if int(n) in nation_name
    }
    cust_nation = dict(
        zip(
            customer.column("custkey").tolist(),
            customer.column("nationkey").tolist(),
        )
    )
    lo = date_to_days(params["q5_date"])
    hi = date_to_days(params["q5_date_hi"])
    orows = orders.range_scan("orderdate", lo, hi, hi_open=True)
    ocust = orders.column("custkey", orows)
    lkeys = li.column("orderkey")
    lsupp = li.column("suppkey")
    price = li.column("extendedprice").astype(np.int64)
    disc = li.column("discount").astype(np.int64)
    opos, lpos = E.hash_join(
        orders.column("orderkey", orows), np.arange(len(orows)), lkeys
    )
    groups: Dict[int, int] = {}
    for po, pl in zip(opos.tolist(), lpos.tolist()):
        snat = supp_nation.get(int(lsupp[pl]))
        if snat is None:
            continue
        if cust_nation[int(ocust[po])] != snat:
            continue
        groups[snat] = groups.get(snat, 0) + int(price[pl]) * (
            100 - int(disc[pl])
        )
    out = [
        (nation_name[n], Decimal(v).scaleb(-4)) for n, v in groups.items()
    ]
    return ["n_name", "revenue"], E.top_k_rows(out, [(1, True)], None)


def q6(db: Database, params: Dict[str, Any]) -> PlanResult:
    li = db["lineitem"]
    lo = date_to_days(params["q6_date"])
    hi = date_to_days(params["q6_date_hi"])
    rows = li.range_scan("shipdate", lo, hi, hi_open=True)
    disc = li.column("discount", rows).astype(np.int64)
    qty = li.column("quantity", rows).astype(np.int64)
    d_lo = int(params["q6_disc_lo"].scaleb(2))
    d_hi = int(params["q6_disc_hi"].scaleb(2))
    q_max = int(Decimal(params["q6_quantity"]).scaleb(2))
    mask = (disc >= d_lo) & (disc <= d_hi) & (qty < q_max)
    price = li.column("extendedprice", rows).astype(np.int64)
    revenue = int(np.sum(price[mask] * disc[mask]))
    return ["revenue"], [(Decimal(revenue).scaleb(-4),)]


def q7(db: Database, params: Dict[str, Any]) -> PlanResult:
    nation, supplier, customer, orders, li = (
        db["nation"],
        db["supplier"],
        db["customer"],
        db["orders"],
        db["lineitem"],
    )
    nation_name = {
        int(k): nation.decode_value("name", c)
        for k, c in zip(
            nation.column("nationkey").tolist(), nation.column("name").tolist()
        )
    }
    wanted = {params["q7_nation_a"], params["q7_nation_b"]}
    keys = {k for k, n in nation_name.items() if n in wanted}
    supp_nation = {
        int(k): int(n)
        for k, n in zip(
            supplier.column("suppkey").tolist(),
            supplier.column("nationkey").tolist(),
        )
        if int(n) in keys
    }
    cust_nation = {
        int(k): int(n)
        for k, n in zip(
            customer.column("custkey").tolist(),
            customer.column("nationkey").tolist(),
        )
        if int(n) in keys
    }
    order_cust = dict(
        zip(
            orders.column("orderkey").tolist(),
            orders.column("custkey").tolist(),
        )
    )
    lo = date_to_days(params["q7_date_lo"])
    hi = date_to_days(params["q7_date_hi"])
    rows = li.range_scan("shipdate", lo, hi)
    groups: Dict[tuple, int] = {}
    ship = li.column("shipdate", rows)
    okey = li.column("orderkey", rows)
    skey = li.column("suppkey", rows)
    price = li.column("extendedprice", rows).astype(np.int64)
    disc = li.column("discount", rows).astype(np.int64)
    for i in range(len(rows)):
        snat = supp_nation.get(int(skey[i]))
        if snat is None:
            continue
        ck = order_cust.get(int(okey[i]))
        if ck is None:
            continue
        cnat = cust_nation.get(int(ck))
        if cnat is None or cnat == snat:
            continue
        year = days_to_date(int(ship[i])).year
        key = (nation_name[snat], nation_name[cnat], year)
        groups[key] = groups.get(key, 0) + int(price[i]) * (100 - int(disc[i]))
    out = [
        (sn, cn, year, Decimal(v).scaleb(-4))
        for (sn, cn, year), v in groups.items()
    ]
    columns = ["supp_nation", "cust_nation", "year", "revenue"]
    return columns, E.top_k_rows(out, [(0, False), (1, False), (2, False)], None)


def q10(db: Database, params: Dict[str, Any]) -> PlanResult:
    nation, customer, orders, li = (
        db["nation"],
        db["customer"],
        db["orders"],
        db["lineitem"],
    )
    nation_name = {
        int(k): nation.decode_value("name", c)
        for k, c in zip(
            nation.column("nationkey").tolist(), nation.column("name").tolist()
        )
    }
    cust = {
        int(k): (
            customer.decode_value("name", n),
            int(b),
            nation_name[int(nk)],
        )
        for k, n, b, nk in zip(
            customer.column("custkey").tolist(),
            customer.column("name").tolist(),
            customer.column("acctbal").tolist(),
            customer.column("nationkey").tolist(),
        )
    }
    lo = date_to_days(params["q10_date"])
    hi = date_to_days(params["q10_date_hi"])
    orows = orders.range_scan("orderdate", lo, hi, hi_open=True)
    ocust = orders.column("custkey", orows)
    flag_code = db["lineitem"].encode_value("returnflag", "R")
    lrows = E.select(li, None, "returnflag", "==", "R")
    del flag_code
    okey = li.column("orderkey", lrows)
    price = li.column("extendedprice", lrows).astype(np.int64)
    disc = li.column("discount", lrows).astype(np.int64)
    opos, lpos = E.hash_join(
        orders.column("orderkey", orows), np.arange(len(orows)), okey
    )
    groups: Dict[int, int] = {}
    for po, pl in zip(opos.tolist(), lpos.tolist()):
        ck = int(ocust[po])
        groups[ck] = groups.get(ck, 0) + int(price[pl]) * (
            100 - int(disc[pl])
        )
    out = []
    for ck, v in groups.items():
        name, bal, nat = cust[ck]
        out.append((ck, name, _dec(bal), nat, Decimal(v).scaleb(-4)))
    columns = ["custkey", "name", "acctbal", "nation", "revenue"]
    return columns, E.top_k_rows(out, [(4, True), (0, False)], 20)


def q12(db: Database, params: Dict[str, Any]) -> PlanResult:
    orders, li = db["orders"], db["lineitem"]
    high_codes = {
        orders.encode_value("orderpriority", p) for p in ("1-URGENT", "2-HIGH")
    }
    mode_codes = li.string_codes_where(
        "shipmode", lambda m: m in ("MAIL", "SHIP")
    )
    rows = E.select_in(li, None, "shipmode", mode_codes)
    commit = li.column("commitdate", rows)
    receipt = li.column("receiptdate", rows)
    ship = li.column("shipdate", rows)
    lo = date_to_days(params["q12_date"])
    hi = date_to_days(params["q12_date_hi"])
    mask = (commit < receipt) & (ship < commit) & (receipt >= lo) & (receipt < hi)
    rows = rows[mask]
    modes = li.column("shipmode", rows)
    okeys = li.column("orderkey", rows)
    # The join against the full orders table is where the adaptive build
    # side pays: the filtered lineitem side is far smaller, so hashing it
    # and streaming the orders column beats building an all-orders dict.
    all_prio = orders.column("orderpriority")
    opos, lpos = E.hash_join(
        orders.column("orderkey"), np.arange(len(orders)), okeys
    )
    groups: Dict[int, list] = {}
    for po, pl in zip(opos.tolist(), lpos.tolist()):
        prio = int(all_prio[po])
        acc = groups.setdefault(int(modes[pl]), [0, 0])
        if prio in high_codes:
            acc[0] += 1
        else:
            acc[1] += 1
    out = [
        (li.decode_value("shipmode", m), acc[0], acc[1])
        for m, acc in groups.items()
    ]
    columns = ["shipmode", "high_line_count", "low_line_count"]
    return columns, E.top_k_rows(out, [(0, False)], None)


def q14(db: Database, params: Dict[str, Any]) -> PlanResult:
    part, li = db["part"], db["lineitem"]
    promo_codes = set(
        part.string_codes_where("type", lambda t: t.startswith("PROMO")).tolist()
    )
    part_type = dict(
        zip(part.column("partkey").tolist(), part.column("type").tolist())
    )
    lo = date_to_days(params["q14_date"])
    hi = date_to_days(params["q14_date_hi"])
    rows = li.range_scan("shipdate", lo, hi, hi_open=True)
    pkeys = li.column("partkey", rows)
    price = li.column("extendedprice", rows).astype(np.int64)
    disc = li.column("discount", rows).astype(np.int64)
    revenue = price * (100 - disc)
    promo = 0
    total = 0
    for i in range(len(rows)):
        v = int(revenue[i])
        total += v
        if part_type[int(pkeys[i])] in promo_codes:
            promo += v
    return ["promo_revenue", "total_revenue"], [
        (Decimal(promo).scaleb(-4), Decimal(total).scaleb(-4))
    ]


PLANS = {
    "q1": q1,
    "q2": q2,
    "q3": q3,
    "q4": q4,
    "q5": q5,
    "q6": q6,
    "q7": q7,
    "q10": q10,
    "q12": q12,
    "q14": q14,
}


def run_plan(name: str, db: Database, params: Dict[str, Any]) -> PlanResult:
    return PLANS[name](db, params)
