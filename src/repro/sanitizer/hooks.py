"""Global hook point for the protocol sanitizer.

This module deliberately has **no imports** and holds exactly one mutable
global: the currently installed sanitizer (or ``None``).  Every
instrumented call site in the memory core guards its emission with::

    if _san.SANITIZER is not None:
        _san.SANITIZER.event("slot.valid", ...)

so the cost with the sanitizer disabled is a single module-attribute load
plus an identity comparison — effectively free next to the work the hot
paths already do.  Use :func:`repro.sanitizer.enabled` (a context
manager) rather than mutating ``SANITIZER`` directly.
"""

#: The active :class:`repro.sanitizer.invariants.Sanitizer`, or ``None``.
SANITIZER = None
