"""Opt-in protocol sanitizer for the memory-reclamation core.

Usage::

    from repro import sanitizer
    from repro.sanitizer import FaultPlan, ScheduleController

    with sanitizer.enabled(manager=m) as san:
        ...                      # every protocol transition is checked
    san.assert_clean()

or run any CLI command under it with ``python -m repro --sanitize ...``.

While enabled, hook points threaded through ``repro/memory/*``, the
compactor and the scan runtime report every protocol transition to a
:class:`~repro.sanitizer.invariants.Sanitizer`, which validates the
paper's safety invariants (limbo slots reclaimed only at
``free_epoch + 2``, monotonic incarnation counters, FROZEN/LOCKED bit
discipline, epoch advancement rules) and raises
:class:`~repro.errors.ProtocolViolation` with an event trace on any
breach.  A :class:`~repro.sanitizer.schedule.ScheduleController` turns
the same hook points into deterministic yield points for interleaving
tests, and a :class:`~repro.sanitizer.faults.FaultPlan` injects
allocation failures, incarnation overflow and compactor crashes.

When nothing is installed every hook is a single ``is not None`` check
(see :mod:`repro.sanitizer.hooks`) — the disabled overhead is
unmeasurable next to the allocation fast path.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.sanitizer import hooks as _hooks

__all__ = [
    "enabled",
    "install",
    "uninstall",
    "active",
    "Sanitizer",
    "SanitizedMemoryManager",
    "ScheduleController",
    "Gate",
    "FaultPlan",
    "ProtocolViolation",
    "InjectedFaultError",
]

#: Lazily resolved exports: keeps this package import-free so the memory
#: core can import :mod:`repro.sanitizer.hooks` without cycles.
_LAZY = {
    "Sanitizer": "repro.sanitizer.invariants",
    "SanitizedMemoryManager": "repro.sanitizer.invariants",
    "ScheduleController": "repro.sanitizer.schedule",
    "Gate": "repro.sanitizer.schedule",
    "FaultPlan": "repro.sanitizer.faults",
    "ProtocolViolation": "repro.errors",
    "InjectedFaultError": "repro.errors",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def active():
    """The currently installed sanitizer, or ``None``."""
    return _hooks.SANITIZER


def install(sanitizer) -> None:
    """Install *sanitizer* globally (prefer the :func:`enabled` manager)."""
    _hooks.SANITIZER = sanitizer


def uninstall(sanitizer=None) -> None:
    """Remove the active sanitizer (or *sanitizer*, if it is the active one)."""
    if sanitizer is None or _hooks.SANITIZER is sanitizer:
        _hooks.SANITIZER = None


@contextmanager
def enabled(manager=None, schedule=None, faults=None, trace_limit=4096):
    """Run the enclosed block with a fresh sanitizer installed.

    Nests: the previously installed sanitizer (if any) is restored on
    exit, so a test may tighten an already-sanitized scope with its own
    schedule or fault plan.
    """
    from repro.sanitizer.invariants import Sanitizer

    sanitizer = Sanitizer(
        manager=manager, schedule=schedule, faults=faults, trace_limit=trace_limit
    )
    previous = _hooks.SANITIZER
    _hooks.SANITIZER = sanitizer
    try:
        yield sanitizer
    finally:
        _hooks.SANITIZER = previous
        if schedule is not None:
            schedule.release_all()
