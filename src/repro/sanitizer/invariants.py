"""Runtime invariant checker for the memory-reclamation protocol.

The :class:`Sanitizer` receives structured events from hook points
threaded through the memory core (``repro/memory/*``, the compactor and
the scan runtime) and validates, on every protocol transition, the safety
rules from sections 3.2–3.4 and 5.1 of the paper:

``premature-reclaim``
    no slot leaves LIMBO before ``removal_epoch + 2``;
``double-free`` / ``free-unallocated-slot``
    only VALID slots may move to LIMBO;
``publish-valid-slot``
    a slot already VALID is never published again;
``incarnation-regression``
    incarnation counters only ever increase (except the audited reset of
    retired entries after a full reference-repair scan);
``frozen-free-slot`` / ``frozen-null-entry``
    the FROZEN bit is only ever set on entries whose slot holds a live
    object;
``foreign-unlock``
    the LOCKED bit is released by the thread that acquired it;
``backpointer-mismatch``
    a published slot's back-pointer and its indirection entry agree
    (unless the entry is mid-relocation, i.e. LOCKED);
``repoint-unlocked``
    an indirection entry is only re-pointed while LOCKED (or nulled);
``release-live-entry``
    an indirection entry is only recycled once its pointer is nulled;
``epoch-skip`` / ``epoch-regression`` / ``epoch-overtook-critical-section``
    the global epoch advances monotonically, one step at a time, and
    never past a thread still inside a critical section;
``premature-block-recycle``
    a queued block is only recycled once its ready epoch has passed;
``evict-pinned-block`` / ``evict-owned-block``
    the pager never demotes a pinned, allocator-active, compacting or
    reclamation-queued block;
``evict-before-grace``
    a cooling block is only demoted two epochs after cooling began, so
    no writer whose critical section validated residency can still be
    in flight (the epoch-visible-dirty rule);
``fault-left-cold``
    a fault leaves the block hot with its tier region retained.

Every event is appended to a bounded trace ring; a violation raises
:class:`~repro.errors.ProtocolViolation` carrying the trace tail.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Any, Dict, List, Optional

from repro.errors import ProtocolViolation
from repro.memory import slots as slotcodec
from repro.memory.addressing import NULL_ADDRESS
from repro.memory.indirection import FROZEN, INC_MASK, LOCKED
from repro.memory.manager import MemoryManager
from repro.sanitizer import hooks as _hooks


def _fmt(value: Any) -> Any:
    """Reduce event payload objects to trace-friendly primitives."""
    block_id = getattr(value, "block_id", None)
    if block_id is not None:
        return f"block#{block_id}"
    if isinstance(value, MemoryManager):
        return "manager"
    return value if isinstance(value, (int, float, str, bool, type(None))) else type(value).__name__


class Sanitizer:
    """Opt-in protocol invariant checker plus trace recorder.

    With ``manager`` given, only events originating from that manager's
    address space / indirection table / epoch manager are validated;
    without it, the sanitizer auto-binds to every manager created while
    it is installed (and validates table/epoch events of managers it has
    seen).  ``schedule`` and ``faults`` attach an optional
    :class:`~repro.sanitizer.schedule.ScheduleController` and
    :class:`~repro.sanitizer.faults.FaultPlan`.
    """

    def __init__(
        self,
        manager: Optional[MemoryManager] = None,
        schedule=None,
        faults=None,
        trace_limit: int = 4096,
    ) -> None:
        self.schedule = schedule
        self.faults = faults
        self.trace: deque = deque(maxlen=trace_limit)
        self.violations: List[ProtocolViolation] = []
        self.event_counts: Counter = Counter()
        self._managers: List[MemoryManager] = []
        self._auto_register = manager is None
        if manager is not None:
            self._managers.append(manager)
        self._seq = 0
        self._lock = threading.RLock()
        # Shadow state.  Keyed by the objects themselves (not ``id()``,
        # which CPython reuses after collection); a sanitizer is
        # short-lived, so pinning the keyed objects is fine.
        #: (table, entry) -> highest incarnation counter observed.
        self._inc_shadow: Dict[tuple, int] = {}
        #: (table, entry) -> thread ident holding the LOCKED bit.
        self._lockers: Dict[tuple, int] = {}
        #: epochs -> last global epoch observed.
        self._epoch_shadow: Dict[Any, int] = {}

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def event(self, name: str, lock_held: bool = False, **data: Any) -> None:
        """Record *name*, check its invariants, then run fault/schedule hooks.

        ``lock_held`` marks events emitted under a core lock (indirection
        stripe, epoch advance lock); those never park in the scheduler,
        so gates cannot wedge unrelated threads.
        """
        with self._lock:
            self._seq += 1
            self.event_counts[name] += 1
            self.trace.append(
                f"#{self._seq} [{threading.current_thread().name}] {name} "
                + " ".join(f"{k}={_fmt(v)}" for k, v in data.items())
            )
            checker = _CHECKS.get(name)
            if checker is not None:
                checker(self, data)
        if self.faults is not None:
            self.faults.fire(name, data)
        if self.schedule is not None and not lock_held:
            self.schedule.yield_point(name, data)

    def _violate(self, invariant: str, message: str) -> None:
        violation = ProtocolViolation(invariant, message, trace=list(self.trace))
        self.violations.append(violation)
        raise violation

    def assert_clean(self) -> None:
        """Fail if any violation was recorded (even if swallowed upstream)."""
        if self.violations:
            raise self.violations[0]

    # ------------------------------------------------------------------
    # Manager resolution
    # ------------------------------------------------------------------

    def _on_manager_created(self, data: Dict[str, Any]) -> None:
        if self._auto_register:
            self._managers.append(data["manager"])

    def _manager_for_space(self, space) -> Optional[MemoryManager]:
        for m in self._managers:
            if m.space is space:
                return m
        return None

    def _manager_for_table(self, table) -> Optional[MemoryManager]:
        for m in self._managers:
            if m.table is table:
                return m
        return None

    def _tracks_epochs(self, epochs) -> bool:
        return any(m.epochs is epochs for m in self._managers)

    # ------------------------------------------------------------------
    # Slot-directory invariants
    # ------------------------------------------------------------------

    def _check_slot_valid(self, data: Dict[str, Any]) -> None:
        block, slot, word = data["block"], data["slot"], data["word"]
        state = word & slotcodec.STATE_MASK
        if state == slotcodec.VALID:
            self._violate(
                "publish-valid-slot",
                f"slot {slot} of block#{block.block_id} is already VALID",
            )
        manager = self._manager_for_space(block.space)
        if manager is None:
            return
        if state == slotcodec.LIMBO:
            removal = slotcodec.epoch_of(word)
            epoch = manager.epochs.global_epoch
            if epoch < removal + 2:
                self._violate(
                    "premature-reclaim",
                    f"slot {slot} of block#{block.block_id} left limbo at "
                    f"epoch {epoch}, but was freed at {removal} "
                    f"(reclaimable at {removal + 2})",
                )
        entry = int(block.backptrs[slot])
        if entry >= 0:
            inc_word = manager.table.incarnation_word(entry)
            if not inc_word & LOCKED:
                address = manager.table.address_of(entry)
                if address != block.slot_address(slot):
                    self._violate(
                        "backpointer-mismatch",
                        f"slot {slot} of block#{block.block_id} publishes "
                        f"back-pointer to entry {entry}, but the entry "
                        f"points at {address:#x}, not "
                        f"{block.slot_address(slot):#x}",
                    )

    def _check_slot_limbo(self, data: Dict[str, Any]) -> None:
        block, slot, word = data["block"], data["slot"], data["word"]
        state = word & slotcodec.STATE_MASK
        if state == slotcodec.LIMBO:
            self._violate(
                "double-free",
                f"slot {slot} of block#{block.block_id} is already in "
                f"limbo (freed at epoch {slotcodec.epoch_of(word)})",
            )
        if state != slotcodec.VALID:
            self._violate(
                "free-unallocated-slot",
                f"slot {slot} of block#{block.block_id} is FREE; only "
                f"VALID slots may move to limbo",
            )
        manager = self._manager_for_space(block.space)
        if manager is not None and data["epoch"] > manager.epochs.global_epoch:
            self._violate(
                "limbo-epoch-from-future",
                f"slot {slot} of block#{block.block_id} stamped with "
                f"removal epoch {data['epoch']} > global epoch "
                f"{manager.epochs.global_epoch}",
            )

    def _check_block_recycled(self, data: Dict[str, Any]) -> None:
        block, epoch, ready = data["block"], data["epoch"], data["ready"]
        if ready > epoch:
            self._violate(
                "premature-block-recycle",
                f"block#{block.block_id} recycled at epoch {epoch} before "
                f"its ready epoch {ready}",
            )

    # ------------------------------------------------------------------
    # Incarnation-word invariants
    # ------------------------------------------------------------------

    def _check_inc_update(self, data: Dict[str, Any]) -> None:
        table, entry = data["table"], data["entry"]
        old, new, kind = data["old"], data["new"], data["kind"]
        key = (table, entry)
        old_counter, new_counter = old & INC_MASK, new & INC_MASK
        if kind == "retire_reset":
            if old_counter != INC_MASK:
                self._violate(
                    "retire-reset-live-entry",
                    f"entry {entry} reset to incarnation 0 but its counter "
                    f"({old_counter}) never overflowed",
                )
            self._inc_shadow[key] = 0
            self._lockers.pop(key, None)
            return
        shadow = self._inc_shadow.get(key, 0)
        if new_counter < old_counter or new_counter < shadow:
            self._violate(
                "incarnation-regression",
                f"entry {entry} incarnation counter moved {old_counter} -> "
                f"{new_counter} (highest observed {shadow}); counters only "
                f"ever increment",
            )
        if kind == "increment" and new_counter != old_counter + 1:
            self._violate(
                "incarnation-regression",
                f"entry {entry} free incremented the counter "
                f"{old_counter} -> {new_counter}, expected a single step",
            )
        self._inc_shadow[key] = new_counter
        me = threading.get_ident()
        if new & LOCKED and not old & LOCKED:
            self._lockers[key] = me
        elif old & LOCKED and not new & LOCKED:
            locker = self._lockers.pop(key, None)
            if locker is not None and locker != me:
                self._violate(
                    "foreign-unlock",
                    f"entry {entry} LOCKED by thread {locker} but released "
                    f"by thread {me}",
                )
        if new & FROZEN and not old & FROZEN:
            self._check_freeze_target(table, entry)

    def _check_freeze_target(self, table, entry: int) -> None:
        manager = self._manager_for_table(table)
        if manager is None:
            return
        address = table.address_of(entry)
        if address == NULL_ADDRESS:
            self._violate(
                "frozen-null-entry",
                f"FROZEN set on entry {entry} whose pointer is null",
            )
        block = manager.space.try_block_at(address)
        if block is None or not hasattr(block, "state_of"):
            return
        slot = block.slot_of_address(address)
        if block.state_of(slot) == slotcodec.FREE:
            self._violate(
                "frozen-free-slot",
                f"FROZEN set on entry {entry} but its slot {slot} of "
                f"block#{block.block_id} is FREE",
            )

    def _check_entry_release(self, data: Dict[str, Any]) -> None:
        table, entry = data["table"], data["entry"]
        if table.address_of(entry) != NULL_ADDRESS:
            self._violate(
                "release-live-entry",
                f"entry {entry} recycled while still pointing at "
                f"{table.address_of(entry):#x}",
            )

    def _check_entry_repoint(self, data: Dict[str, Any]) -> None:
        table, entry, address = data["table"], data["entry"], data["address"]
        if address == NULL_ADDRESS:
            return
        if not table.incarnation_word(entry) & LOCKED:
            self._violate(
                "repoint-unlocked",
                f"entry {entry} re-pointed to {address:#x} without holding "
                f"the LOCKED bit",
            )

    # ------------------------------------------------------------------
    # Tiering invariants (flags captured at transition time: the pager
    # emits after releasing its lock, so live block state may already
    # have legitimately moved on)
    # ------------------------------------------------------------------

    def _check_tier_evict(self, data: Dict[str, Any]) -> None:
        block = data["block"]
        if data["pin_count"]:
            self._violate(
                "evict-pinned-block",
                f"block#{block.block_id} demoted while pinned "
                f"(pin_count={data['pin_count']})",
            )
        if data["was_active"] or data["was_compacting"] or data["was_queued"]:
            owner = (
                "allocator-active"
                if data["was_active"]
                else "compacting" if data["was_compacting"] else "reclaim-queued"
            )
            self._violate(
                "evict-owned-block",
                f"block#{block.block_id} demoted while {owner}",
            )
        if data["epoch"] < data["cool_epoch"] + 2:
            self._violate(
                "evict-before-grace",
                f"block#{block.block_id} demoted at epoch {data['epoch']} "
                f"but began cooling at {data['cool_epoch']} (demotable at "
                f"{data['cool_epoch'] + 2}); a writer's critical section "
                f"may still trust the hot buffer",
            )

    def _check_tier_fault(self, data: Dict[str, Any]) -> None:
        block = data["block"]
        if data["residency"] != "hot":
            self._violate(
                "fault-left-cold",
                f"block#{block.block_id} faulted but its residency is "
                f"{data['residency']!r}, not 'hot'",
            )
        if data["tier_offset"] < 0:
            self._violate(
                "fault-left-cold",
                f"block#{block.block_id} faulted but lost its tier region; "
                f"a clean re-demotion would have nothing to map",
            )

    # ------------------------------------------------------------------
    # Epoch invariants
    # ------------------------------------------------------------------

    def _check_epoch_advance(self, data: Dict[str, Any]) -> None:
        epochs, old, new = data["epochs"], data["old"], data["new"]
        if self._managers and not self._tracks_epochs(epochs):
            return
        if new != old + 1:
            self._violate(
                "epoch-skip",
                f"global epoch jumped {old} -> {new}; advances must be "
                f"single steps",
            )
        last = self._epoch_shadow.get(epochs, -1)
        if new <= last:
            self._violate(
                "epoch-regression",
                f"global epoch moved to {new} after {last} was observed",
            )
        self._epoch_shadow[epochs] = new
        me = threading.get_ident()
        for tid, epoch, depth in epochs.contexts_snapshot():
            if depth > 0 and tid != me and epoch < old:
                self._violate(
                    "epoch-overtook-critical-section",
                    f"global epoch advanced {old} -> {new} while thread "
                    f"{tid} is inside a critical section begun at epoch "
                    f"{epoch}",
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """One-line-per-point summary of the events seen so far."""
        lines = [f"sanitizer: {self._seq} events, {len(self.violations)} violations"]
        for name, count in sorted(self.event_counts.items()):
            lines.append(f"  {name:<24} {count}")
        return "\n".join(lines)


_CHECKS = {
    "manager.created": Sanitizer._on_manager_created,
    "slot.valid": Sanitizer._check_slot_valid,
    "slot.limbo": Sanitizer._check_slot_limbo,
    "block.recycled": Sanitizer._check_block_recycled,
    "inc.update": Sanitizer._check_inc_update,
    "entry.release": Sanitizer._check_entry_release,
    "entry.repoint": Sanitizer._check_entry_repoint,
    "epoch.advance": Sanitizer._check_epoch_advance,
    # "tier.cool" carries no check: it exists as a schedule yield point
    # between the cooling decision and the demotion that completes it.
    "tier.evict": Sanitizer._check_tier_evict,
    "tier.fault": Sanitizer._check_tier_fault,
}


class SanitizedMemoryManager(MemoryManager):
    """A :class:`MemoryManager` wrapped by its own sanitizer.

    Installs a fresh :class:`Sanitizer` (bound to this manager) for the
    manager's whole lifetime; :meth:`close` restores the previously
    installed sanitizer, so instances nest like the ``enabled()`` context
    manager.
    """

    def __init__(self, *args, schedule=None, faults=None, trace_limit=4096, **kwargs):
        self.sanitizer = Sanitizer(
            schedule=schedule, faults=faults, trace_limit=trace_limit
        )
        self._previous_sanitizer = _hooks.SANITIZER
        _hooks.SANITIZER = self.sanitizer
        try:
            super().__init__(*args, **kwargs)
        except BaseException:
            _hooks.SANITIZER = self._previous_sanitizer
            raise

    def close(self) -> None:
        try:
            super().close()
        finally:
            if _hooks.SANITIZER is self.sanitizer:
                _hooks.SANITIZER = self._previous_sanitizer
