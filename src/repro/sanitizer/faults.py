"""Deterministic fault injection for the memory-reclamation core.

A :class:`FaultPlan` arms a fixed number of failures at named protocol
points; the sanitizer calls :meth:`FaultPlan.fire` on every event, and an
armed fault either raises a *detectable* error into the faulting code
path or mutates protocol state to force a rare edge case:

``fail_allocation``
    raise :class:`~repro.errors.MemoryExhaustedError` from
    ``MemoryManager.allocate_object`` (the ``alloc.start`` point) —
    before any slot or indirection entry is claimed, so a failed
    allocation must leave no trace;
``force_incarnation_overflow``
    at ``free.validated`` (after the free's incarnation check, before the
    increment) push the entry's counter to the top of its 29-bit range:
    in ``retire`` mode to ``INC_MASK - 1`` so the free succeeds and the
    entry is *retired* instead of recycled; in ``raise`` mode to
    ``INC_MASK`` so the increment raises
    :class:`~repro.errors.IncarnationOverflowError`;
``crash_compactor``
    raise :class:`~repro.errors.InjectedFaultError` from the compactor's
    moving phase (the ``compact.move_item`` point) after a configurable
    number of successful moves — simulating a compactor thread dying
    mid-relocation;
``crash_at``
    raise :class:`~repro.errors.InjectedFaultError` from *any* named
    event point — the durability subsystem uses it to kill the process
    model between a write-ahead log append's split halves
    (``wal.append.mid``), before an fsync (``wal.fsync``) and around a
    checkpoint's renames (``checkpoint.snapshot_rename``,
    ``checkpoint.manifest_rename``).  With ``power_loss=True`` a crash
    at a WAL point also truncates the log file back to its last fsynced
    offset first, modelling page-cache loss on power failure rather
    than a mere process kill.  The replication layer adds three points:
    ``repl.ship`` (primary, before serving a tail to a follower),
    ``repl.apply`` (replica, before a shipped record is appended to its
    local log) and ``repl.promote`` (inside promotion, before the
    local-id checkpoint barrier) — the failover drills kill primaries
    and replicas at these points.

Fault counters are consumed exactly once per armed fault, so tests can
assert that the system *degrades into the injected error and nothing
else* and then continues operating correctly.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from repro.errors import InjectedFaultError, MemoryExhaustedError
from repro.memory.indirection import FLAG_MASK, INC_MASK


class FaultPlan:
    """A set of armed faults keyed by sanitizer event name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._alloc_skip = 0
        self._alloc_times = 0
        self._overflow_times = 0
        self._overflow_mode = "retire"
        self._crash_after_moves = 0
        self._crash_armed = False
        # point -> [skip, times, power_loss] for generic crash_at faults.
        self._crash_points: Dict[str, list] = {}
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def fail_allocation(self, after: int = 0, times: int = 1) -> "FaultPlan":
        """Fail the next *times* allocations once *after* have succeeded."""
        with self._lock:
            self._alloc_skip = after
            self._alloc_times = times
        return self

    def force_incarnation_overflow(
        self, times: int = 1, mode: str = "retire"
    ) -> "FaultPlan":
        """Push the freed entry's incarnation counter to its limit."""
        if mode not in ("retire", "raise"):
            raise ValueError(f"unknown overflow mode {mode!r}")
        with self._lock:
            self._overflow_times = times
            self._overflow_mode = mode
        return self

    def crash_compactor(self, after_moves: int = 0) -> "FaultPlan":
        """Kill the compactor after *after_moves* successful relocations."""
        with self._lock:
            self._crash_after_moves = after_moves
            self._crash_armed = True
        return self

    def crash_at(
        self,
        point: str,
        after: int = 0,
        times: int = 1,
        power_loss: bool = False,
    ) -> "FaultPlan":
        """Raise ``InjectedFaultError`` at *point* once *after* passes.

        *point* is any sanitizer event name; the event's data travels
        with the fault, so a ``power_loss`` crash at a WAL point can
        first drop the log's unsynced bytes
        (:meth:`~repro.durability.wal.WriteAheadLog.simulate_power_loss`).
        """
        with self._lock:
            self._crash_points[point] = [after, times, power_loss]
        return self

    # ------------------------------------------------------------------
    # Firing (called by the sanitizer on every event)
    # ------------------------------------------------------------------

    def fire(self, point: str, data: Dict[str, Any]) -> None:
        if point == "alloc.start":
            with self._lock:
                if self._alloc_times <= 0:
                    return
                if self._alloc_skip > 0:
                    self._alloc_skip -= 1
                    return
                self._alloc_times -= 1
                self.fired["alloc.start"] = self.fired.get("alloc.start", 0) + 1
            raise MemoryExhaustedError(
                "injected allocation failure (sanitizer fault plan)"
            )
        if point == "free.validated":
            with self._lock:
                if self._overflow_times <= 0:
                    return
                self._overflow_times -= 1
                mode = self._overflow_mode
                self.fired["free.validated"] = (
                    self.fired.get("free.validated", 0) + 1
                )
            self._push_counter_to_limit(data, mode)
            return
        if point == "compact.move_item":
            with self._lock:
                if not self._crash_armed:
                    return
                if self._crash_after_moves > 0:
                    self._crash_after_moves -= 1
                    return
                self._crash_armed = False
                self.fired["compact.move_item"] = (
                    self.fired.get("compact.move_item", 0) + 1
                )
            raise InjectedFaultError(
                "injected compactor crash mid-relocation (sanitizer fault plan)"
            )
        spec = self._crash_points.get(point)
        if spec is not None:
            with self._lock:
                spec = self._crash_points.get(point)
                if spec is None or spec[1] <= 0:
                    return
                if spec[0] > 0:
                    spec[0] -= 1
                    return
                spec[1] -= 1
                power_loss = spec[2]
                self.fired[point] = self.fired.get(point, 0) + 1
            wal = data.get("wal")
            if wal is not None:
                # The "process" dies here: with power_loss the unsynced
                # bytes vanish too; either way the log goes inert so
                # unwinding cleanup paths cannot write past the crash.
                if power_loss:
                    wal.simulate_power_loss()
                else:
                    wal.mark_crashed()
            raise InjectedFaultError(
                f"injected crash at {point} (sanitizer fault plan)"
            )

    @staticmethod
    def _push_counter_to_limit(data: Dict[str, Any], mode: str) -> None:
        """CAS the entry's counter to the top of the incarnation range.

        ``retire`` leaves room for exactly one more increment (the free in
        progress), so the entry hits ``INC_MASK`` and is retired on
        release; ``raise`` saturates it so the increment itself raises.
        """
        table = data["manager"].table
        entry = data["entry"]
        target = INC_MASK - 1 if mode == "retire" else INC_MASK
        while True:
            word = table.incarnation_word(entry)
            if (word & INC_MASK) >= target:
                return
            if table.cas_inc(entry, word, (word & FLAG_MASK) | target):
                return
