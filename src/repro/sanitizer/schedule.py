"""Deterministic schedule control for sanitizer yield points.

Every instrumented protocol step doubles as a *yield point*: when a
:class:`ScheduleController` is attached to the active sanitizer, each
event flows through :meth:`ScheduleController.yield_point`, which can

* **park** the emitting thread on a :class:`Gate` until the test releases
  it — this is how the interleaving tests force a specific thread to
  stop *exactly* between two protocol steps (free-during-scan,
  compact-during-deref, ...) and is fully deterministic;
* apply **seeded jitter**: with ``switch_probability > 0`` each thread
  draws from its own RNG (seeded from ``seed`` and the thread name) and
  occasionally yields the GIL or sleeps, perturbing thread interleavings
  reproducibly — re-running with the same seed and thread names replays
  the same per-thread decision sequence.

Events emitted while a core lock is held (``lock_held=True``) never
reach the controller, so a gate can never wedge a stripe or epoch lock.
Tests may also call :meth:`ScheduleController.yield_point` directly to
create ad-hoc synchronisation points of their own.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from typing import Any, Callable, Dict, List, Optional

#: Upper bound on how long a parked thread waits for its release; keeps a
#: forgotten gate from hanging a test run forever.
GATE_PARK_TIMEOUT = 30.0


class Gate:
    """A parking spot at one yield point.

    The first ``times`` threads whose event matches ``filter`` (and
    ``thread``, a thread-name match, when given) block until
    :meth:`release` is called.  The controlling test uses
    :meth:`wait_parked` to know the target thread has arrived.
    """

    def __init__(
        self,
        point: str,
        times: int = 1,
        thread: Optional[str] = None,
        filter: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> None:
        self.point = point
        self.thread = thread
        self.filter = filter
        self._remaining = times
        self._lock = threading.Lock()
        self._parked = threading.Event()
        self._released = threading.Event()
        self.parked_threads: List[str] = []
        self.hits = 0

    def _maybe_park(self, info: Dict[str, Any]) -> None:
        name = threading.current_thread().name
        with self._lock:
            self.hits += 1
            if self._remaining <= 0:
                return
            if self.thread is not None and name != self.thread:
                return
            if self.filter is not None and not self.filter(info):
                return
            self._remaining -= 1
            self.parked_threads.append(name)
        self._parked.set()
        self._released.wait(timeout=GATE_PARK_TIMEOUT)

    def wait_parked(self, timeout: float = 10.0) -> bool:
        """Block until some thread parked here; False on timeout."""
        return self._parked.wait(timeout)

    def release(self) -> None:
        """Let every parked (and future matching) thread proceed."""
        with self._lock:
            self._remaining = 0
        self._released.set()


class ScheduleController:
    """Seeded scheduler driving the sanitizer's yield points."""

    def __init__(
        self,
        seed: Optional[int] = None,
        switch_probability: float = 0.0,
        max_sleep: float = 0.0002,
    ) -> None:
        self.seed = seed if seed is not None else random.randrange(1 << 32)
        self.switch_probability = switch_probability
        self.max_sleep = max_sleep
        self._gates: Dict[str, List[Gate]] = {}
        self._rngs: Dict[int, random.Random] = {}
        self._lock = threading.Lock()
        self.points_hit: Counter = Counter()

    # ------------------------------------------------------------------
    # Gates (deterministic interleavings)
    # ------------------------------------------------------------------

    def pause_at(
        self,
        point: str,
        times: int = 1,
        thread: Optional[str] = None,
        filter: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> Gate:
        """Install a gate: the next matching thread to hit *point* parks."""
        gate = Gate(point, times=times, thread=thread, filter=filter)
        with self._lock:
            self._gates.setdefault(point, []).append(gate)
        return gate

    def remove_gate(self, gate: Gate) -> None:
        gate.release()
        with self._lock:
            gates = self._gates.get(gate.point, [])
            if gate in gates:
                gates.remove(gate)

    def release_all(self) -> None:
        """Release every gate (teardown safety net)."""
        with self._lock:
            gates = [g for lst in self._gates.values() for g in lst]
            self._gates.clear()
        for gate in gates:
            gate.release()

    # ------------------------------------------------------------------
    # Yield-point entry (called by the sanitizer)
    # ------------------------------------------------------------------

    def yield_point(self, point: str, info: Optional[Dict[str, Any]] = None) -> None:
        with self._lock:
            self.points_hit[point] += 1
            gates = list(self._gates.get(point, ()))
        for gate in gates:
            gate._maybe_park(info or {})
        if self.switch_probability > 0.0:
            rng = self._thread_rng()
            if rng.random() < self.switch_probability:
                time.sleep(rng.random() * self.max_sleep if self.max_sleep else 0.0)

    def _thread_rng(self) -> random.Random:
        """Per-thread RNG seeded from (seed, thread name): replayable."""
        ident = threading.get_ident()
        rng = self._rngs.get(ident)
        if rng is None:
            name = threading.current_thread().name
            rng = random.Random(f"{self.seed}:{name}")
            with self._lock:
                rng = self._rngs.setdefault(ident, rng)
        return rng

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ScheduleController seed={self.seed} "
            f"p_switch={self.switch_probability} "
            f"points={sum(self.points_hit.values())}>"
        )
