"""Cost-based adaptive planning over the statistics the SMC already keeps.

PRs 2-7 gave the collection full visibility into its own workload — zone
maps with per-block min/max and exact code sets, StringDict domain
cardinalities, always-on scan counters — but plans were still built
blind: conjunctive predicates ran in a fixed order and every scan walked
every admitted block the same way.  This module closes the loop
(ROADMAP item 5):

* **Selectivity estimation** from zone-map envelopes (uniform
  interpolation between a column's observed min/max in the raw value
  domain) and string-dictionary match sets (the exact fraction of the
  domain a predicate selects, weighted by nothing — TPC-H string
  domains are near-uniform).
* **Predicate ordering** by Selinger-style rank: evaluate the cheapest,
  most selective conjunct first so later (more expensive, usually
  navigating) kernels see already-reduced row sets.  A top-level
  ``a & b & c`` conjunction is split into independently ordered
  conjuncts, which also lets each contribute zone tests on its own.
* **Access-path choice**: a point predicate over a hash-indexed field
  turns the scan into an index lookup that touches only the blocks
  holding matches; otherwise the plan stays a (pruned) scan.
* **Adaptive morsel width**: per-query feedback (block admit rate) from
  previous executions shrinks the morsel size when pruning leaves few
  admitted blocks per chunk, keeping every worker busy.
* **Serve-path routing**: tiny estimated scans skip the process pool
  (`exec_workers`) — fan-out costs more than the scan saves.

Everything here is *advisory*: ordering never changes results (the
engines apply every predicate), estimates may be wrong (EXPLAIN prints
estimated vs actual rows so mis-estimates are debuggable), and the
whole planner can be disabled per query (``planner=False`` /
``--no-planner``) for ablation, which restores declaration-order
predicate evaluation with no conjunction splitting.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.query.compiler import (
    _NO_LITERAL,
    _field_dtype,
    _literal,
    _zone_raw,
)
from repro.query.expressions import (
    Between,
    BoolOp,
    Cmp,
    Expr,
    FieldRef,
    InSet,
    Not,
    RefIdentity,
    StrContains,
    StrPrefix,
)
from repro.schema.fields import CharField, VarStringField

#: Selectivity assumed for predicates the estimator cannot bound.
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: Selectivity assumed for equality over an unbounded/unknown domain.
EQ_SELECTIVITY = 0.05
#: Cost units per reference-navigation hop (a navigated predicate pays
#: an address gather + incarnation check per hop before its kernel).
NAV_STEP_COST = 4.0
#: Guard against rank blow-up for predicates estimated fully selective.
_EPS = 1e-6
#: Estimated-row threshold below which the serve path keeps a query on
#: the serial in-process engine instead of the worker pool.
SMALL_SCAN_ROWS = 2048
#: An index lookup must be at least this selective to beat a pruned scan
#: (hash lookups return handles; per-row handle overhead is high, so the
#: crossover sits well below one block's worth of rows).
INDEX_SELECTIVITY_LIMIT = 0.02


# ----------------------------------------------------------------------
# Global toggle (ablation surface; per-query `planner=` overrides it)
# ----------------------------------------------------------------------

_enabled = True


def set_enabled(flag: bool) -> None:
    """Process-wide planner default (per-query ``planner=`` still wins)."""
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    return _enabled


# ----------------------------------------------------------------------
# Table statistics (from zone maps, cached per memory context)
# ----------------------------------------------------------------------


class TableStats:
    """Aggregated per-field raw-domain envelope over a context's blocks.

    ``distinct[name]`` is the exact domain cardinality of a small-domain
    string field (Char or dictionary-coded varstring), unioned from the
    per-block value/code sets the zone maps already keep.  An entry is
    published only when *every* zoned block contributed a set — a block
    whose per-block domain overflowed the zone map's set limit means the
    field's true cardinality is unknown, so the field is dropped rather
    than under-counted.
    """

    __slots__ = ("rows", "blocks", "lo", "hi", "distinct")

    def __init__(self) -> None:
        self.rows = 0
        self.blocks = 0
        self.lo: Dict[str, Any] = {}
        self.hi: Dict[str, Any] = {}
        self.distinct: Dict[str, int] = {}

    def bounds(self, name: str) -> Optional[Tuple[Any, Any]]:
        lo = self.lo.get(name)
        if lo is None:
            return None
        return lo, self.hi[name]

    def distinct_count(self, name: str) -> Optional[int]:
        return self.distinct.get(name)


def _collect_stats(source) -> TableStats:
    """One pass over *source*'s blocks, folding their zone maps.

    Runs inside a critical section; blocks whose map cannot be built
    (being filled, raced by a writer) simply contribute no bounds —
    estimates degrade toward the defaults, never toward wrong answers.
    """
    from repro.memory import zonemap
    from repro.query.runtime import scan_blocks

    manager = source.manager
    stats = TableStats()
    sets: Dict[str, set] = {}
    contrib: Dict[str, int] = {}
    zoned_blocks = 0
    manager.epochs.enter_critical_section()
    try:
        for block in scan_blocks(manager, source.context):
            stats.blocks += 1
            zones = zonemap.ensure(manager, block)
            if zones is None:
                continue
            zoned_blocks += 1
            for name, lo in zones.lo.items():
                hi = zones.hi[name]
                cur = stats.lo.get(name)
                if cur is None or lo < cur:
                    stats.lo[name] = lo
                cur = stats.hi.get(name)
                if cur is None or hi > cur:
                    stats.hi[name] = hi
            for source_map in (zones.codes, zones.charsets):
                for name, values in source_map.items():
                    sets.setdefault(name, set()).update(values)
                    contrib[name] = contrib.get(name, 0) + 1
    finally:
        manager.epochs.exit_critical_section()
    # Publish a distinct count only for fields every zoned block covered:
    # a block whose domain overflowed the set limit would make the union
    # a lower bound, and 1/undercount overstates equality selectivity.
    for name, values in sets.items():
        if contrib.get(name) == zoned_blocks and values:
            stats.distinct[name] = len(values)
    stats.rows = len(source)
    return stats


def table_stats(source) -> Optional[TableStats]:
    """Cached :class:`TableStats` for a collection-like source.

    Invalidation is coarse on purpose: the cache key is (block count,
    row count), which catches loads, bulk deletes and compaction; pure
    in-place updates that move a column's envelope are picked up the
    next time the shape changes (estimates tolerate that staleness —
    the service-level plan-cache fingerprint handles drift for cached
    plans).
    """
    context = getattr(source, "context", None)
    if context is None or getattr(source, "manager", None) is None:
        return None
    try:
        key = (context.block_count(), len(source))
    except TypeError:
        return None
    cached = getattr(context, "_planner_stats", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    stats = _collect_stats(source)
    context._planner_stats = (key, stats)
    return stats


def _stats_for_field(source, field) -> Optional[TableStats]:
    """Stats of the collection owning *field* (follows navigation)."""
    owner = getattr(field, "owner", None)
    if owner is None:
        return None
    if getattr(source, "schema", None) is owner:
        return table_stats(source)
    manager = getattr(source, "manager", None)
    if manager is None:
        return None
    coll = getattr(manager, "collections", {}).get(owner.__name__)
    if coll is None:
        return None
    return table_stats(coll)


def _strdict_for_field(source, field):
    owner = getattr(field, "owner", None)
    manager = getattr(source, "manager", None)
    if owner is None or manager is None:
        return None
    coll = getattr(manager, "collections", {}).get(owner.__name__)
    return getattr(coll, "strdict", None)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------


def nav_depth(expr: Expr) -> int:
    """Deepest reference navigation inside *expr*."""
    depth = 0
    if isinstance(expr, FieldRef):
        depth = len(expr.steps)
    elif isinstance(expr, RefIdentity):
        depth = len(expr.steps) - 1
    for child in expr.children():
        depth = max(depth, nav_depth(child))
    return depth


def kernel_count(expr: Expr) -> int:
    """Vector comparison kernels *expr* applies per row batch.

    A ``Between`` lowers to two compares, a composed boolean to the sum
    of its parts — charging them accordingly keeps a two-kernel range
    test from outranking a genuinely cheaper single compare.
    """
    if isinstance(expr, Between):
        return 2
    if isinstance(expr, (Cmp, InSet, RefIdentity, StrPrefix, StrContains)):
        return 1
    count = 0
    for child in expr.children():
        count += kernel_count(child)
    return max(1, count)


def predicate_cost(expr: Expr) -> float:
    """Per-row evaluation cost in abstract units (1 = local kernel)."""
    return float(kernel_count(expr)) + NAV_STEP_COST * nav_depth(expr)


def _clamp(s: float) -> float:
    if s != s:  # NaN guard
        return DEFAULT_SELECTIVITY
    return min(1.0, max(0.0, s))


def _range_fraction(lo, hi, vlo, vhi) -> float:
    """Fraction of the uniform [lo, hi] envelope inside [vlo, vhi]."""
    try:
        span = float(hi) - float(lo)
        if span <= 0:
            mid = float(lo)
            inside = (vlo is None or float(vlo) <= mid) and (
                vhi is None or mid <= float(vhi)
            )
            return 1.0 if inside else 0.0
        left = float(lo) if vlo is None else max(float(lo), float(vlo))
        right = float(hi) if vhi is None else min(float(hi), float(vhi))
        if right < left:
            return 0.0
        return (right - left) / span
    except (TypeError, ValueError, OverflowError):
        return DEFAULT_SELECTIVITY


def _field_of(expr: Expr):
    """The un-navigated-or-navigated plain field *expr* reads, if any."""
    if isinstance(expr, FieldRef):
        return expr.field
    return None


def _eq_selectivity(source, field, stats: Optional[TableStats]) -> float:
    """Selectivity of ``field == literal`` from domain cardinality/width."""
    if stats is not None:
        # Exact per-field cardinality from the zone maps' small-domain
        # value/code sets (Char and dict-coded varstring fields).  This
        # beats the string dictionary's live_count, which counts the
        # *collection-wide* dictionary, not this field's domain.
        distinct = stats.distinct_count(field.name)
        if distinct:
            return 1.0 / distinct
    if isinstance(field, VarStringField):
        sd = _strdict_for_field(source, field)
        if sd is not None and sd.live_count > 0:
            return 1.0 / sd.live_count
        return EQ_SELECTIVITY
    if isinstance(field, CharField):
        return EQ_SELECTIVITY
    bounds = stats.bounds(field.name) if stats is not None else None
    if bounds is not None:
        lo, hi = bounds
        try:
            width = float(hi) - float(lo)
        except (TypeError, ValueError):
            return EQ_SELECTIVITY
        if width >= 0:
            return 1.0 / (width + 1.0)
    return EQ_SELECTIVITY


def estimate_selectivity(expr: Expr, params: Dict[str, Any], source) -> float:
    """Estimated fraction of rows satisfying *expr* (always in [0, 1])."""
    if isinstance(expr, BoolOp):
        parts = [estimate_selectivity(p, params, source) for p in expr.parts]
        if expr.op == "and":
            s = 1.0
            for p in parts:
                s *= p
            return _clamp(s)
        s = 1.0
        for p in parts:
            s *= 1.0 - p
        return _clamp(1.0 - s)
    if isinstance(expr, Not):
        return _clamp(1.0 - estimate_selectivity(expr.inner, params, source))
    if isinstance(expr, Cmp):
        return _estimate_cmp(expr, params, source)
    if isinstance(expr, Between):
        field = _field_of(expr.inner)
        if field is None or isinstance(field, VarStringField):
            return DEFAULT_SELECTIVITY
        stats = _stats_for_field(source, field)
        bounds = stats.bounds(field.name) if stats is not None else None
        lo = _literal(expr.lo, params)
        hi = _literal(expr.hi, params)
        if bounds is None or lo is _NO_LITERAL or hi is _NO_LITERAL:
            return DEFAULT_SELECTIVITY
        spec = _field_dtype(field)
        rlo, rhi = _zone_raw(lo, spec), _zone_raw(hi, spec)
        if rlo is None or rhi is None:
            return DEFAULT_SELECTIVITY
        return _clamp(_range_fraction(bounds[0], bounds[1], rlo, rhi))
    if isinstance(expr, InSet):
        field = _field_of(expr.inner)
        if field is None:
            return DEFAULT_SELECTIVITY
        if isinstance(field, VarStringField):
            sd = _strdict_for_field(source, field)
            if sd is not None and sd.live_count > 0:
                matched = len(
                    sd.match_set(
                        "inset", frozenset(str(v) for v in expr.values)
                    )
                )
                return _clamp(matched / sd.live_count)
        stats = _stats_for_field(source, field)
        return _clamp(len(expr.values) * _eq_selectivity(source, field, stats))
    if isinstance(expr, (StrPrefix, StrContains)):
        field = _field_of(expr.inner)
        if field is None or not isinstance(field, VarStringField):
            return DEFAULT_SELECTIVITY
        sd = _strdict_for_field(source, field)
        if sd is None or sd.live_count <= 0:
            return DEFAULT_SELECTIVITY
        if isinstance(expr, StrPrefix):
            matched = len(sd.match_set("prefix", expr.prefix))
        else:
            matched = len(sd.match_set("contains", expr.needle))
        return _clamp(matched / sd.live_count)
    return DEFAULT_SELECTIVITY


def _estimate_cmp(expr: Cmp, params: Dict[str, Any], source) -> float:
    field, value, op = None, None, expr.op
    if _field_of(expr.left) is not None:
        field = _field_of(expr.left)
        value = _literal(expr.right, params)
    elif _field_of(expr.right) is not None:
        field = _field_of(expr.right)
        value = _literal(expr.left, params)
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if field is None or value is _NO_LITERAL:
        # Column-vs-column compares (reference joins etc.): no estimate.
        if op == "==":
            return EQ_SELECTIVITY
        return DEFAULT_SELECTIVITY
    stats = _stats_for_field(source, field)
    if isinstance(field, VarStringField):
        if op == "==" and isinstance(value, str):
            sd = _strdict_for_field(source, field)
            if sd is not None and sd.live_count > 0:
                matched = len(sd.match_set("inset", frozenset((value,))))
                return _clamp(matched / sd.live_count)
        return EQ_SELECTIVITY if op == "==" else DEFAULT_SELECTIVITY
    if isinstance(field, CharField):
        # Padded bytes have no numeric raw image; equality still has a
        # domain-cardinality estimate (zone-map charsets).
        if op == "==":
            return _clamp(_eq_selectivity(source, field, stats))
        if op == "!=":
            return _clamp(1.0 - _eq_selectivity(source, field, stats))
        return DEFAULT_SELECTIVITY
    raw = _zone_raw(value, _field_dtype(field))
    if raw is None:
        return EQ_SELECTIVITY if op == "==" else DEFAULT_SELECTIVITY
    if op == "==":
        return _clamp(_eq_selectivity(source, field, stats))
    if op == "!=":
        return _clamp(1.0 - _eq_selectivity(source, field, stats))
    bounds = stats.bounds(field.name) if stats is not None else None
    if bounds is None:
        return DEFAULT_SELECTIVITY
    lo, hi = bounds
    if op in ("<", "<="):
        return _clamp(_range_fraction(lo, hi, None, raw))
    return _clamp(_range_fraction(lo, hi, raw, None))


# ----------------------------------------------------------------------
# Predicate ordering
# ----------------------------------------------------------------------


class PredicatePlan:
    """One ordered conjunct with its estimates (EXPLAIN row).

    ``group_factor`` is the conjunct's contribution to the whole scan's
    estimated selectivity.  It defaults to the conjunct's own estimate;
    when several range conjuncts constrain the *same* column they are
    estimated jointly (interval intersection instead of the independence
    product), and the joint factor is carried by the group's first
    member while the rest contribute 1.0.
    """

    __slots__ = (
        "expr",
        "selectivity",
        "cost",
        "rank",
        "declared_at",
        "group_factor",
    )

    def __init__(self, expr: Expr, selectivity: float, cost: float, declared_at: int) -> None:
        self.expr = expr
        self.selectivity = selectivity
        self.cost = cost
        # Selinger rank: cost per unit of row reduction.  Low rank =
        # cheap and selective = run first.
        self.rank = cost / max(_EPS, 1.0 - selectivity)
        self.declared_at = declared_at
        self.group_factor = selectivity


def split_conjuncts(filters: List[Expr]) -> List[Expr]:
    """Flatten top-level AND conjunctions, preserving declaration order."""
    out: List[Expr] = []
    for pred in filters:
        if isinstance(pred, BoolOp) and pred.op == "and":
            out.extend(pred.parts)
        else:
            out.append(pred)
    return out


def _range_info(expr: Expr, params: Dict[str, Any]):
    """``(column_key, field, rlo, rhi)`` for a literal range conjunct.

    Recognises ``col < lit`` / ``col >= lit`` / ``col.between(lo, hi)``
    (either literal side) over one column reference — possibly
    navigated — and returns the constrained raw interval, or ``None``
    for anything else.  ``column_key`` identifies the column including
    its navigation path, so two range ends over the same column can be
    estimated jointly instead of via the independence product (TPC-H's
    date windows are the canonical correlated pair).
    """
    if isinstance(expr, Between):
        ref = expr.inner
        if not isinstance(ref, FieldRef) or isinstance(ref.field, VarStringField):
            return None
        lo = _literal(expr.lo, params)
        hi = _literal(expr.hi, params)
        if lo is _NO_LITERAL or hi is _NO_LITERAL:
            return None
        spec = _field_dtype(ref.field)
        rlo, rhi = _zone_raw(lo, spec), _zone_raw(hi, spec)
        if rlo is None or rhi is None:
            return None
        return ref.signature(), ref.field, rlo, rhi
    if not isinstance(expr, Cmp) or expr.op not in ("<", "<=", ">", ">="):
        return None
    op = expr.op
    if isinstance(expr.left, FieldRef):
        ref, value = expr.left, _literal(expr.right, params)
    elif isinstance(expr.right, FieldRef):
        ref, value = expr.right, _literal(expr.left, params)
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    else:
        return None
    if isinstance(ref.field, VarStringField) or value is _NO_LITERAL:
        return None
    raw = _zone_raw(value, _field_dtype(ref.field))
    if raw is None:
        return None
    if op in ("<", "<="):
        return ref.signature(), ref.field, None, raw
    return ref.signature(), ref.field, raw, None


def _joint_range_selectivity(source, field, members) -> Optional[float]:
    """Intersection estimate for same-column range conjuncts."""
    stats = _stats_for_field(source, field)
    bounds = stats.bounds(field.name) if stats is not None else None
    if bounds is None:
        return None
    vlo = vhi = None
    for __, rlo, rhi in members:
        if rlo is not None:
            vlo = rlo if vlo is None else max(vlo, rlo)
        if rhi is not None:
            vhi = rhi if vhi is None else min(vhi, rhi)
    return _clamp(_range_fraction(bounds[0], bounds[1], vlo, vhi))


def order_filters(
    filters: List[Expr], params: Dict[str, Any], source
) -> Tuple[List[Expr], List[PredicatePlan]]:
    """Split and rank a conjunction; returns (ordered exprs, estimates).

    Conjuncts are ordered by Selinger rank.  Range conjuncts over the
    same column form one scheduling unit: their selectivity is the
    *joint* interval-intersection estimate (range ends of one window are
    strongly correlated, the independence product badly overestimates
    the survivors), their navigation cost is charged once (an adjacent
    same-column member reuses the gathered addresses and column
    values), and they are placed — internally rank-ordered — at the
    group's combined rank.
    """
    conjuncts = split_conjuncts(filters)
    plans = [
        PredicatePlan(
            expr,
            estimate_selectivity(expr, params, source),
            predicate_cost(expr),
            i,
        )
        for i, expr in enumerate(conjuncts)
    ]
    # Bucket literal range conjuncts by constrained column.
    buckets: Dict[str, List[Tuple[PredicatePlan, Any, Any]]] = {}
    fields: Dict[str, Any] = {}
    for plan in plans:
        info = _range_info(plan.expr, params)
        if info is None:
            continue
        key, field, rlo, rhi = info
        buckets.setdefault(key, []).append((plan, rlo, rhi))
        fields[key] = field
    grouped: Dict[int, Tuple[float, float, int, int]] = {}  # id(plan) -> group sort key
    for key, members in buckets.items():
        if len(members) < 2:
            continue
        joint = _joint_range_selectivity(source, fields[key], members)
        if joint is None:
            joint = 1.0
            for plan, __, __ in members:
                joint *= plan.selectivity
        joint = min(joint, min(p.selectivity for p, __, __ in members))
        # One nav charge for the whole group (later members hit the
        # address/value caches), and later members only see the rows the
        # earlier ones kept — so the group's per-input-row cost is the
        # *expected* kernel count c1 + s1*c2 + ..., not the plain sum.
        first = min(p.declared_at for p, __, __ in members)
        depth = max(nav_depth(p.expr) for p, __, __ in members)
        ordered_members = sorted(
            (p for p, __, __ in members), key=lambda p: (p.rank, p.declared_at)
        )
        cost = NAV_STEP_COST * depth
        survivors = 1.0
        for p in ordered_members:
            cost += survivors * kernel_count(p.expr)
            survivors *= p.selectivity
        rank = cost / max(_EPS, 1.0 - joint)
        for plan, __, __ in members:
            grouped[id(plan)] = (rank, depth, first)
            plan.group_factor = 1.0
        lead = min((p for p, __, __ in members), key=lambda p: (p.rank, p.declared_at))
        lead.group_factor = joint
    # Deterministic: ties (identical estimates) keep cheap-navigation
    # and declaration order; grouped members sort at their group's rank
    # and stay adjacent, internally cheapest-and-most-selective first.
    def sort_key(p: PredicatePlan):
        g = grouped.get(id(p))
        if g is not None:
            return g + (p.rank, p.declared_at)
        return (p.rank, nav_depth(p.expr), p.declared_at, 0.0, 0)

    plans.sort(key=sort_key)
    return [p.expr for p in plans], plans


# ----------------------------------------------------------------------
# Access-path choice
# ----------------------------------------------------------------------


class IndexChoice:
    """A point predicate answerable by a hash index."""

    __slots__ = ("index", "key", "pred_index")

    def __init__(self, index, key, pred_index: int) -> None:
        self.index = index
        self.key = key          # decoded key value (HashIndex key domain)
        self.pred_index = pred_index  # position in the ordered filter list


def choose_index(
    source, ordered: List[Expr], plans: List[PredicatePlan], params: Dict[str, Any]
) -> Optional[IndexChoice]:
    """Pick a hash-index lookup when a point predicate is selective enough.

    Only un-navigated ``field == literal`` conjuncts over a field with a
    hash index qualify; the lookup path re-applies every filter, so this
    is purely an access-path substitution.  Direct-pointer managers are
    excluded (index entries are indirection ids).
    """
    manager = getattr(source, "manager", None)
    indexed = getattr(source, "_indexed_fields", None)
    if manager is None or not indexed or manager.direct_pointers:
        return None
    for i, expr in enumerate(ordered):
        if not isinstance(expr, Cmp) or expr.op != "==":
            continue
        field, value = None, None
        if isinstance(expr.left, FieldRef) and not expr.left.steps:
            field = expr.left.field
            value = _literal(expr.right, params)
        elif isinstance(expr.right, FieldRef) and not expr.right.steps:
            field = expr.right.field
            value = _literal(expr.left, params)
        if field is None or value is _NO_LITERAL:
            continue
        for index in indexed.get(field.name, ()):
            if index.kind != "hash":
                continue
            if plans[i].selectivity <= INDEX_SELECTIVITY_LIMIT:
                return IndexChoice(index, value, i)
    return None


# ----------------------------------------------------------------------
# Whole-scan planning + EXPLAIN surface
# ----------------------------------------------------------------------


class PlanInfo:
    """Everything EXPLAIN (and the adaptive feedback loop) wants to show."""

    __slots__ = (
        "signature",
        "predicates",
        "access_path",
        "table_rows",
        "est_selectivity",
        "est_rows",
        "morsel_hint",
        "index_field",
    )

    def __init__(self, signature: str) -> None:
        self.signature = signature
        self.predicates: List[PredicatePlan] = []
        self.access_path = "full-scan"
        self.table_rows = 0
        self.est_selectivity = 1.0
        self.est_rows = 0
        self.morsel_hint: Optional[int] = None
        self.index_field: Optional[str] = None

    def explain_lines(self) -> List[str]:
        lines = [
            f"  planner: {self.access_path}, est {self.est_rows} of "
            f"{self.table_rows} rows (selectivity {self.est_selectivity:.4f})"
        ]
        if self.index_field is not None:
            lines.append(f"    index lookup on {self.index_field}")
        for i, p in enumerate(self.predicates):
            lines.append(
                f"    [{i}] sel={p.selectivity:.4f} cost={p.cost:.1f} "
                f"rank={p.rank:.2f}  {p.expr.signature()}"
            )
        if self.morsel_hint is not None:
            lines.append(f"    morsel hint: {self.morsel_hint} blocks/unit")
        return lines


def plan_scan(
    query_signature: str,
    filters: List[Expr],
    params: Dict[str, Any],
    source,
    prune: bool = True,
) -> Tuple[List[Expr], Optional[IndexChoice], PlanInfo]:
    """Order a scan's conjuncts and choose its access path."""
    ordered, plans = order_filters(filters, params, source)
    info = PlanInfo(query_signature)
    info.predicates = plans
    stats = table_stats(source)
    info.table_rows = stats.rows if stats is not None else 0
    sel = 1.0
    for p in plans:
        sel *= p.group_factor
    info.est_selectivity = _clamp(sel)
    info.est_rows = int(round(info.est_selectivity * info.table_rows))
    choice = choose_index(source, ordered, plans, params)
    if choice is not None:
        info.access_path = "index-lookup"
        info.index_field = choice.index.field_name
    elif prune and any(p.selectivity < 1.0 for p in plans):
        info.access_path = "pruned-scan"
    info.morsel_hint = _feedback.morsel_hint(query_signature)
    return ordered, choice, info


def estimate_query_rows(query, params: Dict[str, Any]) -> Optional[int]:
    """Estimated output rows of *query*'s scan stage (serve routing).

    ``None`` means "no estimate" (non-SMC source, no stats): callers
    should not route on it.
    """
    from repro.query.builder import Where

    source = query.source
    stats = table_stats(source)
    if stats is None:
        return None
    filters = [op.pred for op in query.ops if isinstance(op, Where)]
    __, plans = order_filters(filters, params, source)
    sel = 1.0
    for p in plans:
        sel *= p.group_factor
    return int(round(_clamp(sel) * stats.rows))


# ----------------------------------------------------------------------
# Execution feedback (adaptive morsel width, observed selectivity)
# ----------------------------------------------------------------------


class _Feedback:
    """Per-query-signature observations from completed executions.

    Feeds two consumers: EXPLAIN's estimated-vs-actual comparison, and
    the adaptive morsel hint (block admit rate shrinks the morsel so
    each dispatch unit still carries work after pruning).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_sig: Dict[str, Dict[str, Any]] = {}

    def record(
        self,
        signature: str,
        est_rows: int,
        rows_scanned: int,
        rows_matched: int,
        blocks_scanned: int,
        blocks_pruned: int,
        block_count: int,
        workers: int,
    ) -> None:
        with self._lock:
            obs = self._by_sig.setdefault(
                signature,
                {
                    "runs": 0,
                    "est_rows": 0,
                    "rows_scanned": 0,
                    "rows_matched": 0,
                    "blocks_scanned": 0,
                    "blocks_pruned": 0,
                    "block_count": 0,
                    "workers": 1,
                },
            )
            obs["runs"] += 1
            obs["est_rows"] = est_rows
            obs["rows_scanned"] = rows_scanned
            obs["rows_matched"] = rows_matched
            obs["blocks_scanned"] = blocks_scanned
            obs["blocks_pruned"] = blocks_pruned
            obs["block_count"] = block_count
            obs["workers"] = max(1, workers)
            if len(self._by_sig) > 512:  # bound the registry
                self._by_sig.pop(next(iter(self._by_sig)))

    def observation(self, signature: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            obs = self._by_sig.get(signature)
            return dict(obs) if obs is not None else None

    def morsel_hint(self, signature: str) -> Optional[int]:
        """Admitted-block-aware morsel width from the last execution."""
        from repro.query.parallel import MORSELS_PER_WORKER

        with self._lock:
            obs = self._by_sig.get(signature)
            if obs is None:
                return None
            considered = obs["blocks_scanned"] + obs["blocks_pruned"]
            if considered == 0 or obs["blocks_pruned"] == 0:
                return None
            admit = obs["blocks_scanned"] / considered
            workers = obs["workers"]
            block_count = max(obs["block_count"], considered)
        if admit >= 0.95:
            return None
        target_units = max(1, workers) * MORSELS_PER_WORKER
        hint = math.ceil(block_count * max(admit, 1.0 / block_count) / target_units)
        return max(1, hint)

    def clear(self) -> None:
        with self._lock:
            self._by_sig.clear()


_feedback = _Feedback()


def record_observation(info: Optional[PlanInfo], **kwargs) -> None:
    if info is None:
        return
    _feedback.record(info.signature, info.est_rows, **kwargs)


def observation(signature: str) -> Optional[Dict[str, Any]]:
    return _feedback.observation(signature)


def clear_feedback() -> None:
    _feedback.clear()


def route_workers(est_rows: Optional[int], workers: int) -> int:
    """Serve-path routing: tiny scans stay serial (fan-out costs more)."""
    if workers > 1 and est_rows is not None and est_rows < SMALL_SCAN_ROWS:
        return 1
    return workers
