"""Runtime helpers shared by the interpreter and the generated query code.

The central piece is :func:`scan_blocks`: the block enumerator every SMC
scan goes through.  It implements the paper's block-access consistency
protocol for compaction groups (section 5.2):

* blocks that belong to no compaction group are yielded as-is;
* a *finished* group contributes its compacted destination block (once);
* a group reached during the compactor's **moving phase** is relocated by
  the reader ("helping") and the destination block is scanned;
* a group reached during the **waiting phase** is deferred to the end of
  the scan; if the moving phase has begun by then the reader helps,
  otherwise it pins the group's pre-relocation state with the group's
  query counter and scans the source blocks.

The module also provides the small data-structure helpers the generated
code uses (grouped aggregation accumulators, top-k selection), so that the
generated source stays compact and readable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List

from repro.sanitizer import hooks as _san

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.block import Block
    from repro.memory.context import MemoryContext
    from repro.memory.manager import MemoryManager


def scan_blocks(manager: "MemoryManager", context: "MemoryContext") -> Iterator["Block"]:
    """Yield the blocks a scan of *context* must visit, exactly once each.

    Must be driven to completion (or closed) by the caller: pre-state pins
    on compaction groups are released in a ``finally`` when the generator
    is exhausted or closed.
    """
    blocks = context.blocks()
    emitted = set()
    seen_groups = set()
    deferred = []

    def emit(block: "Block"):
        if block.block_id not in emitted:
            emitted.add(block.block_id)
            if _san.SANITIZER is not None:
                _san.SANITIZER.event("scan.block", block=block)
            return True
        return False

    for block in blocks:
        group = block.compaction_group
        if group is None:
            if emit(block):
                yield block
            continue
        if id(group) in seen_groups:
            continue
        seen_groups.add(id(group))
        if group.failed:
            for src in group.sources:
                if emit(src):
                    yield src
            continue
        if group.finished:
            if group.dest is not None and emit(group.dest):
                yield group.dest
            continue
        if manager.in_moving_phase:
            dest = manager.compactor.help_group(group)
            if dest is not None:
                if emit(dest):
                    yield dest
            else:  # group failed under pre-state readers
                for src in group.sources:
                    if emit(src):
                        yield src
            continue
        if (
            manager.next_relocation_epoch is not None
            and manager.epochs.local_epoch() == manager.next_relocation_epoch
        ):
            # Waiting phase: process the remaining blocks first (paper
            # section 5.2), revisit the group afterwards.
            deferred.append(group)
            continue
        # Freezing epoch, or no active relocation conflict: the group's
        # pre-state is stable for the duration of our critical section.
        yield from _scan_prestate(manager, group, emit)

    for group in deferred:
        if group.failed:
            for src in group.sources:
                if emit(src):
                    yield src
        elif group.finished:
            if group.dest is not None and emit(group.dest):
                yield group.dest
        elif manager.in_moving_phase:
            dest = manager.compactor.help_group(group)
            if dest is not None:
                if emit(dest):
                    yield dest
            else:
                for src in group.sources:
                    if emit(src):
                        yield src
        else:
            yield from _scan_prestate(manager, group, emit)


def _scan_prestate(manager: "MemoryManager", group, emit) -> Iterator["Block"]:
    """Scan a group's source blocks with its query counter held."""
    if not group.try_pin_prestate():
        # Relocation completed (or failed) while we were deciding.
        if group.failed:
            for src in group.sources:
                if emit(src):
                    yield src
        elif group.dest is not None and emit(group.dest):
            yield group.dest
        return
    try:
        for src in group.sources:
            if emit(src):
                yield src
    finally:
        group.unpin_prestate()


# ----------------------------------------------------------------------
# Helpers used by generated query code
# ----------------------------------------------------------------------


def top_k(rows: List[tuple], k: int) -> List[tuple]:
    """First *k* rows of an already-sorted row list (LIMIT)."""
    return rows[:k]


class AvgAcc:
    """Streaming average accumulator (sum + count)."""

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def add(self, value) -> None:
        self.total += value
        self.count += 1

    def result(self):
        return self.total / self.count if self.count else None
