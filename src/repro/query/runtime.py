"""Runtime helpers shared by the interpreter and the generated query code.

The central piece is :func:`scan_blocks`: the block enumerator every SMC
scan goes through.  It implements the paper's block-access consistency
protocol for compaction groups (section 5.2):

* blocks that belong to no compaction group are yielded as-is;
* a *finished* group contributes its compacted destination block (once);
* a group reached during the compactor's **moving phase** is relocated by
  the reader ("helping") and the destination block is scanned;
* a group reached during the **waiting phase** is deferred to the end of
  the scan; if the moving phase has begun by then the reader helps,
  otherwise it pins the group's pre-relocation state with the group's
  query counter and scans the source blocks.

The module also provides the small data-structure helpers the generated
code uses (grouped aggregation accumulators, top-k selection), so that the
generated source stays compact and readable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List

from repro.sanitizer import hooks as _san

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.block import Block
    from repro.memory.context import MemoryContext
    from repro.memory.manager import MemoryManager


#: Resolution kinds returned by :func:`resolve_group`.
GROUP_BLOCKS = "blocks"  # plain block list, no pin held
GROUP_PINNED = "pinned"  # block list valid while the pre-state pin is held
GROUP_DEFERRED = "deferred"  # waiting-phase conflict: revisit after the scan


def resolve_group(manager: "MemoryManager", group, defer_ok: bool = True):
    """Decide how a scan must visit one compaction group (section 5.2).

    Returns ``(kind, blocks)``:

    * ``GROUP_BLOCKS`` — scan *blocks* as-is (a settled group's pre-state
      or destination, or a moving-phase group the caller just helped
      relocate);
    * ``GROUP_PINNED`` — *blocks* are the group's pre-state members and
      the group's query counter is **held**: the caller must call
      ``group.unpin_prestate()`` once done with them;
    * ``GROUP_DEFERRED`` — the reader's local epoch conflicts with the
      upcoming relocation epoch; re-resolve with ``defer_ok=False`` after
      every other block has been processed.

    The pre-state member set is ``sources + attached destination``:
    already-moved rows sit VALID in the destination (limbo in their old
    source slot), unmoved rows sit VALID in the sources, so the union
    holds exactly one live copy of every object.  The per-scan emitted
    set de-duplicates blocks that also appear in the scan's snapshot.

    Shared by the serial generator below and the parallel morsel
    dispatcher, so both paths follow the identical protocol.
    """
    while True:
        if group.failed:
            return GROUP_BLOCKS, group.members_prestate()
        if group.finished:
            dest = group.dest
            return GROUP_BLOCKS, ([dest] if dest is not None else [])
        if manager.compactor is None:
            # The compactor died mid-cycle (crash injection / recovery):
            # nothing will ever move again, so the pre-state members hold
            # every live row of the group exactly once.
            return GROUP_BLOCKS, group.members_prestate()
        if manager.in_moving_phase:
            dest = manager.compactor.help_group(group)
            if dest is not None:
                return GROUP_BLOCKS, [dest]
            # Group failed (or finished empty); loop to classify it.
            continue
        if (
            defer_ok
            and manager.next_relocation_epoch is not None
            and manager.epochs.local_epoch() == manager.next_relocation_epoch
        ):
            # Waiting phase: process the remaining blocks first (paper
            # section 5.2), revisit the group afterwards.
            return GROUP_DEFERRED, []
        # Freezing epoch, or no active relocation conflict: pin the
        # group's pre-state for the duration of the caller's use of it.
        if group.try_pin_prestate():
            return GROUP_PINNED, group.members_prestate()
        if not (group.finished or group.failed):
            # Pin refused because a mover claimed the group (possibly
            # between retry rounds, outside the manager's moving phase):
            # drive it to a settled state ourselves, then re-classify.
            dest = manager.compactor.help_group(group)
            if dest is not None:
                return GROUP_BLOCKS, [dest]


def scan_blocks(manager: "MemoryManager", context: "MemoryContext") -> Iterator["Block"]:
    """Yield the blocks a scan of *context* must visit, exactly once each.

    Must be driven to completion (or closed) by the caller: pre-state pins
    on compaction groups are released in a ``finally`` when the generator
    is exhausted or closed.
    """
    blocks = context.blocks()
    emitted = set()
    seen_groups = set()
    deferred = []

    def emit(block: "Block"):
        if block.block_id not in emitted:
            emitted.add(block.block_id)
            if _san.SANITIZER is not None:
                _san.SANITIZER.event("scan.block", block=block)
            return True
        return False

    for block in blocks:
        group = block.compaction_group
        if group is None:
            if emit(block):
                yield block
            continue
        if id(group) in seen_groups:
            continue
        seen_groups.add(id(group))
        kind, members = resolve_group(manager, group)
        if kind == GROUP_DEFERRED:
            deferred.append(group)
            continue
        yield from _emit_resolved(group, kind, members, emit)

    for group in deferred:
        kind, members = resolve_group(manager, group, defer_ok=False)
        yield from _emit_resolved(group, kind, members, emit)


def _emit_resolved(group, kind, members, emit) -> Iterator["Block"]:
    """Yield a resolved group's blocks, releasing the pre-state pin (if
    held) once the caller is done consuming them."""
    if kind == GROUP_PINNED:
        try:
            for block in members:
                if emit(block):
                    yield block
        finally:
            group.unpin_prestate()
    else:
        for block in members:
            if emit(block):
                yield block


# ----------------------------------------------------------------------
# Helpers used by generated query code
# ----------------------------------------------------------------------


def top_k(rows: List[tuple], k: int) -> List[tuple]:
    """First *k* rows of an already-sorted row list (LIMIT)."""
    return rows[:k]


class AvgAcc:
    """Streaming average accumulator (sum + count)."""

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def add(self, value) -> None:
        self.total += value
        self.count += 1

    def result(self):
        return self.total / self.count if self.count else None
