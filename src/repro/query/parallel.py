"""Morsel-driven parallel scans over SMC blocks.

The block is the natural unit of parallel work distribution in an SMC —
fixed-size, single-type and enumerated by the slot directory — so the
parallel executor partitions the scan's block list into *morsels* (small
runs of consecutive blocks) and fans them out over a persistent thread
pool.  The per-block NumPy kernels in :mod:`repro.query.columnar_exec`
release the GIL, which is what makes thread-level parallelism a real
speedup for query-dominated workloads in Python.

Protocol discipline (paper section 5.2):

* the **driver** holds a critical section for the whole fan-out, pinning
  the epoch so the snapshotted block list cannot be reclaimed under the
  scan;
* every **worker** additionally enters its own critical section — each
  scanning thread is an independent reader as far as epoch-based
  reclamation and the compactor's waiting phase are concerned;
* **compaction groups are claimed atomically** by the dispatcher: the
  first worker to reach any block of a group takes the whole group and
  resolves it through :func:`repro.query.runtime.resolve_group` — the
  identical decision procedure the serial scan uses — so helping,
  pre-state pinning and deferral never double-scan a group across
  workers.  Pre-state pins are held for exactly the duration of the
  claiming worker's kernel runs over the group's sources;
* a shared *emitted* set (block ids) guarantees every block is scanned
  at most once even when a group dissolves mid-scan and its former
  sources reappear as plain blocks.

Results stay deterministic: each work unit carries the sequence number
of its position in the block snapshot, and the driver merges the partial
accumulators in sequence order — the same order the serial scan visits
blocks — so grouped aggregation, selection and enumeration produce
bit-identical results at any worker count.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro.query.runtime import (
    GROUP_DEFERRED,
    GROUP_PINNED,
    resolve_group,
)
from repro.sanitizer import hooks as _san

#: Morsels per worker the dispatcher aims for; small enough to balance
#: load, large enough to amortise per-morsel accumulator overhead.
MORSELS_PER_WORKER = 4

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_LOCK = threading.Lock()


def _get_pool(workers: int) -> ThreadPoolExecutor:
    """The shared persistent scan pool, grown to at least *workers*."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None or _POOL._max_workers < workers:
            old = _POOL
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="smc-morsel"
            )
            if old is not None:
                old.shutdown(wait=False)
        return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (tests / interpreter exit).

    Idempotent — the None guard makes repeated calls (an explicit test
    teardown followed by the atexit hook) free.
    """
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
            _POOL = None


# Interpreter exit must not strand non-daemon pool threads mid-join.
atexit.register(shutdown_pool)


class MorselDispatcher:
    """Thread-safe partitioner of one scan's block list.

    Hands out two kinds of work units under a single lock:

    * ``("blocks", seq, [block, ...])`` — a morsel of consecutive
      group-free blocks, already emission-claimed;
    * ``("group", seq, group)`` / ``("deferred", seq, group)`` — a whole
      compaction group, claimed by exactly one worker, which resolves
      its state itself (outside the dispatcher lock, since helping a
      relocation does real work).

    Deferred groups are queued behind the main block list, mirroring the
    serial scan's end-of-scan revisit; a deferring worker keeps pulling
    units afterwards, so a deferred group can never be orphaned.
    """

    def __init__(self, context, morsel_size: int) -> None:
        self._lock = threading.Lock()
        self._blocks = context.blocks()
        self._pos = 0
        self._emitted = set()
        self._seen_groups = set()
        self._deferred: List[Tuple[int, object]] = []
        self.morsel_size = max(1, morsel_size)
        # Deferred units sort after every main-list unit.
        self._defer_seq_base = len(self._blocks) + 1
        self._defer_count = 0

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def next_unit(self):
        with self._lock:
            blocks = self._blocks
            while self._pos < len(blocks):
                group = blocks[self._pos].compaction_group
                if group is not None:
                    seq = self._pos
                    self._pos += 1
                    if id(group) in self._seen_groups:
                        continue
                    self._seen_groups.add(id(group))
                    return ("group", seq, group)
                seq = self._pos
                run = []
                while (
                    self._pos < len(blocks)
                    and len(run) < self.morsel_size
                ):
                    block = blocks[self._pos]
                    if block.compaction_group is not None:
                        break
                    self._pos += 1
                    if block.block_id not in self._emitted:
                        self._emitted.add(block.block_id)
                        run.append(block)
                if run:
                    return ("blocks", seq, run)
            if self._deferred:
                seq, group = self._deferred.pop(0)
                return ("deferred", seq, group)
            return None

    def defer(self, group) -> None:
        with self._lock:
            self._deferred.append(
                (self._defer_seq_base + self._defer_count, group)
            )
            self._defer_count += 1

    def claim_emit(self, block) -> bool:
        """Atomically claim *block* for emission; False if already scanned."""
        with self._lock:
            if block.block_id in self._emitted:
                return False
            self._emitted.add(block.block_id)
            return True


def _scan_worker(dispatcher: MorselDispatcher, plan):
    """One worker: pull morsels until the dispatcher runs dry.

    Returns ``(partials, pruned, scanned)`` where *partials* is a list of
    ``(seq, accumulator)`` pairs for the driver's ordered merge.
    """
    manager = plan.manager
    epochs = manager.epochs
    pager = manager.pager
    probes = plan.make_probes()
    partials = []
    pruned = scanned = 0
    epochs.enter_critical_section()
    try:
        while True:
            unit = dispatcher.next_unit()
            if unit is None:
                break
            kind, seq, payload = unit
            if kind == "blocks":
                acc = plan.make_accumulator()
                for block in payload:
                    if _san.SANITIZER is not None:
                        _san.SANITIZER.event("scan.block", block=block)
                    if not plan.admits(block):
                        pruned += 1
                        continue
                    scanned += 1
                    if pager is not None:
                        pager.touch(block)
                    plan.process_block(block, probes, acc)
                partials.append((seq, acc))
                continue
            # Whole compaction group, claimed by this worker alone.
            group = payload
            gkind, members = resolve_group(
                manager, group, defer_ok=(kind == "group")
            )
            if gkind == GROUP_DEFERRED:
                dispatcher.defer(group)
                continue
            acc = plan.make_accumulator()
            try:
                for block in members:
                    if dispatcher.claim_emit(block):
                        if _san.SANITIZER is not None:
                            _san.SANITIZER.event("scan.block", block=block)
                        if not plan.admits(block):
                            pruned += 1
                            continue
                        scanned += 1
                        if pager is not None:
                            pager.touch(block)
                        plan.process_block(block, probes, acc)
            finally:
                if gkind == GROUP_PINNED:
                    group.unpin_prestate()
            partials.append((seq, acc))
    finally:
        epochs.exit_critical_section()
    return partials, pruned, scanned


def run_parallel(plan, workers: int):
    """Fan a scan out over *workers* threads; returns the merged result.

    The return shape matches ``columnar_exec._run_serial``:
    ``(accumulator, pruned_blocks, scanned_blocks)``.
    """
    manager = plan.manager
    pool = _get_pool(workers)
    manager.epochs.enter_critical_section()
    try:
        context = plan.source.context
        # Adaptive morsel width: feedback from earlier runs of the same
        # query shrinks morsels when zone pruning admits few blocks, so
        # each dispatch unit still carries work (repro.query.planner).
        morsel_size = getattr(plan, "morsel_hint", None)
        if morsel_size is None:
            morsel_size = -(
                -context.block_count() // (workers * MORSELS_PER_WORKER)
            )
        dispatcher = MorselDispatcher(context, morsel_size)
        futures = [
            pool.submit(_scan_worker, dispatcher, plan)
            for __ in range(workers)
        ]
        partials: List[tuple] = []
        pruned = scanned = 0
        for future in futures:
            worker_partials, worker_pruned, worker_scanned = future.result()
            partials.extend(worker_partials)
            pruned += worker_pruned
            scanned += worker_scanned
    finally:
        manager.epochs.exit_critical_section()
    # Deterministic barrier merge: fold partial accumulators in block
    # (sequence) order so the output matches the serial scan exactly.
    partials.sort(key=lambda pair: pair[0])
    acc = plan.make_accumulator()
    for __, partial in partials:
        acc.merge(partial)
    extra = manager.stats.extra
    extra["morsels_dispatched"] = (
        extra.get("morsels_dispatched", 0) + len(partials)
    )
    extra["parallel_scans"] = extra.get("parallel_scans", 0) + 1
    return acc, pruned, scanned
