"""Pull-based iterator query evaluation (the LINQ-to-objects baseline).

This engine evaluates the logical plan one row object at a time through
layered Python generators, calling :meth:`Expr.evaluate` for every
predicate and selector — deliberately mirroring the virtual-function-call
evaluation model the paper identifies as the main inefficiency of
LINQ-to-objects (section 1).  It works uniformly over managed records and
SMC handles, and serves both as the performance baseline and as the
reference semantics the compiled engines are tested against.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.query.builder import (
    Distinct,
    GroupBy,
    Having,
    OrderBy,
    Query,
    Result,
    Select,
    Take,
    Where,
    WhereIn,
)


def _source_rows(source: Any) -> Iterable[Any]:
    """Row objects of any supported source (handles or records)."""
    rows = getattr(source, "iter_rows", None)
    if rows is not None:
        return rows()
    return iter(source)


def run_interpreted(query: Query, params: Dict[str, Any]) -> Result:
    rows: Iterable[Any] = _source_rows(query.source)
    columns: List[str] = ["*"]
    projected = False

    # NOTE: the generator stages bind their operator state through default
    # arguments — a bare generator expression would look its free variables
    # up lazily and every stage would see the *last* op of the loop.
    def _filter(source, pred):
        return (r for r in source if pred.evaluate(r, params))

    def _semijoin(source, exprs, keys, negated):
        if negated:
            return (r for r in source if _key_of(exprs, r, params) not in keys)
        return (r for r in source if _key_of(exprs, r, params) in keys)

    def _project(source, outputs):
        return (
            tuple(e.evaluate(r, params) for __, e in outputs) for r in source
        )

    for op in query.ops:
        if isinstance(op, Where):
            rows = _filter(rows, op.pred)
        elif isinstance(op, WhereIn):
            sub = run_interpreted(op.subquery, params)
            keys = {t if len(t) > 1 else t[0] for t in map(tuple, sub.rows)}
            rows = _semijoin(rows, op.exprs, keys, op.negated)
        elif isinstance(op, Select):
            columns = [name for name, __ in op.outputs]
            rows = _project(rows, op.outputs)
            projected = True
        elif isinstance(op, GroupBy):
            columns, rows = _group(op, rows, params)
            projected = True
        elif isinstance(op, OrderBy):
            rows = _order(op, columns, list(rows))
        elif isinstance(op, Take):
            rows = list(rows)[: op.n]
        elif isinstance(op, Having):
            rows = op.apply(columns, list(rows))
        elif isinstance(op, Distinct):
            rows = Distinct.apply(list(rows))
        else:  # pragma: no cover - guarded by builder
            raise TypeError(f"unknown op {op!r}")

    materialised = list(rows)
    if not projected:
        return Result(["*"], materialised)
    return Result(columns, materialised)


def _key_of(exprs, row, params):
    if len(exprs) == 1:
        return exprs[0].evaluate(row, params)
    return tuple(e.evaluate(row, params) for e in exprs)


def _group(
    op: GroupBy, rows: Iterable[Any], params: Dict[str, Any]
) -> Tuple[List[str], List[tuple]]:
    keys = op.keys
    aggs = op.aggs
    groups: Dict[tuple, list] = {}

    def fresh_acc() -> list:
        acc = []
        for __, agg in aggs:
            if agg.kind == "count":
                acc.append(0)
            elif agg.kind == "avg":
                acc.append([0, 0])
            elif agg.kind in ("min", "max"):
                acc.append(None)
            else:
                acc.append(0)
        return acc

    for row in rows:
        key = tuple(e.evaluate(row, params) for __, e in keys)
        acc = groups.get(key)
        if acc is None:
            groups[key] = acc = fresh_acc()
        for i, (__, agg) in enumerate(aggs):
            if agg.kind == "count":
                acc[i] += 1
                continue
            value = agg.expr.evaluate(row, params)
            if agg.kind == "sum":
                acc[i] += value
            elif agg.kind == "avg":
                acc[i][0] += value
                acc[i][1] += 1
            elif agg.kind == "min":
                acc[i] = value if acc[i] is None else min(acc[i], value)
            elif agg.kind == "max":
                acc[i] = value if acc[i] is None else max(acc[i], value)

    columns = [name for name, __ in keys] + [name for name, __ in aggs]
    out: List[tuple] = []
    for key, acc in groups.items():
        finished = []
        for i, (__, agg) in enumerate(aggs):
            if agg.kind == "avg":
                total, count = acc[i]
                finished.append(total / count if count else None)
            else:
                finished.append(acc[i])
        out.append(key + tuple(finished))
    return columns, out


def _order(op: OrderBy, columns: List[str], rows: List[tuple]) -> List[tuple]:
    for name, desc in reversed(op.items):
        idx = columns.index(name)
        rows.sort(key=lambda r, i=idx: r[i], reverse=desc)
    return rows
