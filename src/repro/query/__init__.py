"""Language-integrated query layer."""

from repro.query.builder import (
    Agg,
    Avg,
    Count,
    Max,
    Min,
    Query,
    Result,
    Sum,
    query,
    ref_key,
)
from repro.query.expressions import Expr, param, ref_identity

__all__ = [
    "Agg",
    "Avg",
    "Count",
    "Max",
    "Min",
    "Query",
    "Result",
    "Sum",
    "query",
    "ref_key",
    "Expr",
    "param",
    "ref_identity",
]
