"""Expression trees for language-integrated queries.

The paper assumes the *structure* of most LINQ queries is statically
defined in the application source, with only query parameters assigned
dynamically (section 2).  We model that with explicit expression trees:
tabular class attributes are fields, and operators on them build
:class:`Expr` nodes::

    Lineitem.shipdate <= param("date")
    Lineitem.price * (1 - Lineitem.discount)

Reference navigation follows the schema's reference fields::

    Lineitem.order.ref("orderdate") < param("date")

Every node supports

* ``evaluate(row, params)`` — interpreted evaluation against a managed
  record or an SMC handle (attribute access), used by the iterator engine
  (the paper's LINQ-to-objects baseline), and
* ``signature()`` — a stable structural key used to cache compiled query
  functions (the analogue of the paper expanding each static LINQ query
  into one generated imperative function).
"""

from __future__ import annotations

import datetime as _dt
from decimal import Decimal
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.schema.fields import (
    CharField,
    DateField,
    DecimalField,
    Field,
    Float64Field,
    RefField,
    VarStringField,
)


class Expr:
    """Base class of all expression nodes."""

    __slots__ = ()

    # -- construction helpers ------------------------------------------

    @staticmethod
    def wrap(value: Any) -> "Expr":
        if isinstance(value, Expr):
            return value
        if isinstance(value, Field):
            return FieldRef(value)
        return Const(value)

    # -- operators ------------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return Cmp("==", self, Expr.wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Cmp("!=", self, Expr.wrap(other))

    def __lt__(self, other):
        return Cmp("<", self, Expr.wrap(other))

    def __le__(self, other):
        return Cmp("<=", self, Expr.wrap(other))

    def __gt__(self, other):
        return Cmp(">", self, Expr.wrap(other))

    def __ge__(self, other):
        return Cmp(">=", self, Expr.wrap(other))

    def __add__(self, other):
        return BinOp("+", self, Expr.wrap(other))

    def __radd__(self, other):
        return BinOp("+", Expr.wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, Expr.wrap(other))

    def __rsub__(self, other):
        return BinOp("-", Expr.wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, Expr.wrap(other))

    def __rmul__(self, other):
        return BinOp("*", Expr.wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, Expr.wrap(other))

    def __rtruediv__(self, other):
        return BinOp("/", Expr.wrap(other), self)

    def __and__(self, other):
        return BoolOp("and", (self, Expr.wrap(other)))

    def __or__(self, other):
        return BoolOp("or", (self, Expr.wrap(other)))

    def __invert__(self):
        return Not(self)

    def isin(self, values: Iterable[Any]) -> "Expr":
        if isinstance(values, Expr):
            raise TypeError("isin expects literal values; use Query.where_in")
        return InSet(self, frozenset(values))

    def between(self, lo: Any, hi: Any) -> "Expr":
        return Between(self, Expr.wrap(lo), Expr.wrap(hi))

    def startswith(self, prefix: str) -> "Expr":
        return StrPrefix(self, prefix)

    def contains(self, needle: str) -> "Expr":
        return StrContains(self, needle)

    __hash__ = object.__hash__

    # -- protocol --------------------------------------------------------

    def evaluate(self, row: Any, params: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def signature(self) -> str:
        raise NotImplementedError

    def children(self) -> Sequence["Expr"]:
        return ()


class Const(Expr):
    """A literal embedded in the query structure."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row, params):
        return self.value

    def signature(self) -> str:
        return f"const({self.value!r})"


class Param(Expr):
    """A dynamic query parameter, bound at execution time.

    Mirrors the paper's expansion of LINQ queries into imperative
    functions "that contain the same parameters as arguments" — parameters
    never change the compiled query's identity, only its inputs.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row, params):
        return params[self.name]

    def signature(self) -> str:
        return f"param({self.name})"


def param(name: str) -> Param:
    """Create a named dynamic query parameter."""
    return Param(name)


class FieldRef(Expr):
    """A (possibly navigated) field access: ``steps`` are reference hops.

    ``FieldRef(Lineitem.shipdate)`` reads a field of the scanned object;
    ``Lineitem.order.ref("orderdate")`` produces a FieldRef whose ``steps``
    contain the ``order`` reference field and whose terminal field is the
    target class's ``orderdate``.
    """

    __slots__ = ("steps", "field")

    def __init__(self, field: Field, steps: Tuple[RefField, ...] = ()) -> None:
        self.steps = steps
        self.field = field

    def ref(self, name: str) -> "FieldRef":
        """Navigate through this reference field to a target field."""
        if not isinstance(self.field, RefField):
            raise TypeError(f"{self.field.name} is not a reference field")
        target = self.field.resolve_target()
        nested = target.__layout__.by_name.get(name)
        if nested is None:
            raise AttributeError(
                f"{target.__name__} has no field {name!r}"
            )
        return FieldRef(nested, self.steps + (self.field,))

    def evaluate(self, row, params):
        obj = row
        for step in self.steps:
            obj = getattr(obj, step.name)
            if obj is None:
                return None
        return getattr(obj, self.field.name)

    def signature(self) -> str:
        path = ".".join(s.name for s in self.steps)
        owner = self.field.owner.__name__ if self.field.owner else "?"
        return f"field({path}{'.' if path else ''}{owner}.{self.field.name})"

    @property
    def dtype(self) -> str:
        return dtype_of_field(self.field)


class RefIdentity(Expr):
    """The identity of a referenced object (for reference-equality joins).

    ``RefIdentity`` of ``l.supplier.nation`` evaluates, in interpreted
    mode, to a hashable identity token of the referenced object; compiled
    backends compare the stored reference words directly — the paper's
    reference-based joins (section 7, "most joins are performed using
    references").
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Tuple[RefField, ...]) -> None:
        if not steps:
            raise ValueError("RefIdentity requires at least one step")
        self.steps = steps

    def evaluate(self, row, params):
        obj = row
        for step in self.steps[:-1]:
            obj = getattr(obj, step.name)
            if obj is None:
                return None
        final = getattr(obj, self.steps[-1].name)
        if final is None:
            return None
        # Handles hash by reference; managed records hash by identity.
        return final

    def signature(self) -> str:
        return "refid(" + ".".join(s.name for s in self.steps) + ")"


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    _FUNCS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row, params):
        return self._FUNCS[self.op](
            self.left.evaluate(row, params), self.right.evaluate(row, params)
        )

    def signature(self) -> str:
        return f"({self.left.signature()}{self.op}{self.right.signature()})"

    def children(self):
        return (self.left, self.right)


class Cmp(Expr):
    __slots__ = ("op", "left", "right")

    _FUNCS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row, params):
        return self._FUNCS[self.op](
            self.left.evaluate(row, params), self.right.evaluate(row, params)
        )

    def signature(self) -> str:
        return f"({self.left.signature()}{self.op}{self.right.signature()})"

    def children(self):
        return (self.left, self.right)


class BoolOp(Expr):
    __slots__ = ("op", "parts")

    def __init__(self, op: str, parts: Tuple[Expr, ...]) -> None:
        # Flatten nested same-op chains for compact generated code.
        flat = []
        for part in parts:
            if isinstance(part, BoolOp) and part.op == op:
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.op = op
        self.parts = tuple(flat)

    def evaluate(self, row, params):
        if self.op == "and":
            return all(p.evaluate(row, params) for p in self.parts)
        return any(p.evaluate(row, params) for p in self.parts)

    def signature(self) -> str:
        inner = f" {self.op} ".join(p.signature() for p in self.parts)
        return f"({inner})"

    def children(self):
        return self.parts


class Not(Expr):
    __slots__ = ("inner",)

    def __init__(self, inner: Expr) -> None:
        self.inner = inner

    def evaluate(self, row, params):
        return not self.inner.evaluate(row, params)

    def signature(self) -> str:
        return f"not({self.inner.signature()})"

    def children(self):
        return (self.inner,)


class InSet(Expr):
    __slots__ = ("inner", "values")

    def __init__(self, inner: Expr, values: frozenset) -> None:
        self.inner = inner
        self.values = values

    def evaluate(self, row, params):
        return self.inner.evaluate(row, params) in self.values

    def signature(self) -> str:
        return f"in({self.inner.signature()},{sorted(map(repr, self.values))})"

    def children(self):
        return (self.inner,)


class Between(Expr):
    __slots__ = ("inner", "lo", "hi")

    def __init__(self, inner: Expr, lo: Expr, hi: Expr) -> None:
        self.inner = inner
        self.lo = lo
        self.hi = hi

    def evaluate(self, row, params):
        value = self.inner.evaluate(row, params)
        return self.lo.evaluate(row, params) <= value <= self.hi.evaluate(
            row, params
        )

    def signature(self) -> str:
        return (
            f"between({self.inner.signature()},{self.lo.signature()},"
            f"{self.hi.signature()})"
        )

    def children(self):
        return (self.inner, self.lo, self.hi)


class StrPrefix(Expr):
    __slots__ = ("inner", "prefix")

    def __init__(self, inner: Expr, prefix: str) -> None:
        self.inner = inner
        self.prefix = prefix

    def evaluate(self, row, params):
        return self.inner.evaluate(row, params).startswith(self.prefix)

    def signature(self) -> str:
        return f"prefix({self.inner.signature()},{self.prefix!r})"

    def children(self):
        return (self.inner,)


class StrContains(Expr):
    __slots__ = ("inner", "needle")

    def __init__(self, inner: Expr, needle: str) -> None:
        self.inner = inner
        self.needle = needle

    def evaluate(self, row, params):
        return self.needle in self.inner.evaluate(row, params)

    def signature(self) -> str:
        return f"contains({self.inner.signature()},{self.needle!r})"

    def children(self):
        return (self.inner,)


class CaseWhen(Expr):
    """Conditional value: ``then`` if ``cond`` else ``otherwise``.

    The SQL CASE/IIF analogue, needed by conditional aggregation (e.g.
    TPC-H Q12's priority counts, Q14's promo revenue share).
    """

    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr) -> None:
        self.cond = cond
        self.then = then
        self.otherwise = otherwise

    def evaluate(self, row, params):
        if self.cond.evaluate(row, params):
            return self.then.evaluate(row, params)
        return self.otherwise.evaluate(row, params)

    def signature(self) -> str:
        return (
            f"case({self.cond.signature()},{self.then.signature()},"
            f"{self.otherwise.signature()})"
        )

    def children(self):
        return (self.cond, self.then, self.otherwise)


def case_when(cond, then, otherwise) -> CaseWhen:
    """Build a conditional expression (SQL ``CASE WHEN`` analogue)."""
    return CaseWhen(Expr.wrap(cond), Expr.wrap(then), Expr.wrap(otherwise))


class YearOf(Expr):
    """Calendar year of a date expression (SQL ``EXTRACT(YEAR ...)``)."""

    __slots__ = ("inner",)

    def __init__(self, inner: Expr) -> None:
        self.inner = inner

    def evaluate(self, row, params):
        value = self.inner.evaluate(row, params)
        return value.year if value is not None else None

    def signature(self) -> str:
        return f"year({self.inner.signature()})"

    def children(self):
        return (self.inner,)


def year_of(expr) -> YearOf:
    """Extract the year of a date field/expression."""
    return YearOf(Expr.wrap(expr))


# ----------------------------------------------------------------------
# dtype helpers (used by the compiler's scaled-decimal algebra)
# ----------------------------------------------------------------------


def dtype_of_field(field: Field) -> str:
    if isinstance(field, DecimalField):
        return "decimal"
    if isinstance(field, DateField):
        return "date"
    if isinstance(field, (CharField, VarStringField)):
        return "str"
    if isinstance(field, Float64Field):
        return "float"
    if isinstance(field, RefField):
        return "ref"
    return "int"


def dtype_of_const(value: Any) -> str:
    if isinstance(value, Decimal):
        return "decimal"
    if isinstance(value, _dt.date):
        return "date"
    if isinstance(value, str):
        return "str"
    if isinstance(value, bool):
        return "int"
    if isinstance(value, float):
        return "float"
    return "int"


def ref_identity(field_or_expr) -> RefIdentity:
    """Build a :class:`RefIdentity` from a reference field or navigation."""
    if isinstance(field_or_expr, RefField):
        return RefIdentity((field_or_expr,))
    if isinstance(field_or_expr, FieldRef):
        if not isinstance(field_or_expr.field, RefField):
            raise TypeError("ref_identity requires a reference field")
        return RefIdentity(field_or_expr.steps + (field_or_expr.field,))
    raise TypeError(f"cannot build a reference identity from {field_or_expr!r}")
