"""The fluent query builder — the LINQ surface of the reproduction.

A :class:`Query` wraps a data source (a self-managed collection, a
columnar collection, or one of the managed baseline collections) and
accumulates a logical plan::

    q = (lineitems.query()
         .where(Lineitem.shipdate <= param("date"))
         .group_by(flag=Lineitem.returnflag, status=Lineitem.linestatus)
         .aggregate(sum_qty=Sum(Lineitem.quantity),
                    count_order=Count())
         .order_by("flag", "status"))
    rows = q.run(date=datetime.date(1998, 9, 2))

Execution engines (mirroring the paper's evaluation series):

``interpreted``
    pull-based iterator evaluation over row objects — the paper's
    LINQ-to-objects baseline;
``compiled``
    a specialised imperative Python function generated per (query
    structure, source kind) and cached — the paper's query compilation.
    The compiled flavour is chosen from the source: attribute loops for
    managed collections, raw-block scans for SMCs ("unsafe"), handle-level
    scans (``smc-safe``, the paper's "SMC (C#)" series), vectorised NumPy
    kernels for columnar collections, and direct-pointer navigation when
    the memory manager runs in direct mode.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.query.expressions import Expr, FieldRef, RefIdentity
from repro.schema.fields import Field


class Agg:
    """An aggregate specification: kind + optional input expression."""

    __slots__ = ("kind", "expr")

    KINDS = ("sum", "count", "avg", "min", "max")

    def __init__(self, kind: str, expr: Optional[Expr]) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown aggregate {kind!r}")
        if kind != "count" and expr is None:
            raise ValueError(f"aggregate {kind} requires an expression")
        self.kind = kind
        self.expr = expr

    def signature(self) -> str:
        inner = self.expr.signature() if self.expr is not None else ""
        return f"{self.kind}({inner})"


def Sum(expr) -> Agg:
    return Agg("sum", Expr.wrap(expr))


def Count() -> Agg:
    return Agg("count", None)


def Avg(expr) -> Agg:
    return Agg("avg", Expr.wrap(expr))


def Min(expr) -> Agg:
    return Agg("min", Expr.wrap(expr))


def Max(expr) -> Agg:
    return Agg("max", Expr.wrap(expr))


# ----------------------------------------------------------------------
# Logical plan operators
# ----------------------------------------------------------------------


class Op:
    __slots__ = ()

    def signature(self) -> str:
        raise NotImplementedError


class Where(Op):
    __slots__ = ("pred",)

    def __init__(self, pred: Expr) -> None:
        self.pred = pred

    def signature(self) -> str:
        return f"where[{self.pred.signature()}]"


class WhereIn(Op):
    """Membership of an expression tuple in a materialised subquery.

    The subquery runs first (with the same engine) and its result tuples
    become a hash set the main query probes — the hash semi-join that
    implements EXISTS-style TPC-H predicates (e.g. Query 4).
    """

    __slots__ = ("exprs", "subquery", "negated")

    def __init__(self, exprs: Tuple[Expr, ...], subquery: "Query", negated: bool) -> None:
        self.exprs = exprs
        self.subquery = subquery
        self.negated = negated

    def signature(self) -> str:
        inner = ",".join(e.signature() for e in self.exprs)
        return f"wherein[{inner};{self.subquery.signature()};{self.negated}]"


class Select(Op):
    __slots__ = ("outputs",)

    def __init__(self, outputs: Sequence[Tuple[str, Expr]]) -> None:
        self.outputs = list(outputs)

    def signature(self) -> str:
        inner = ",".join(f"{n}={e.signature()}" for n, e in self.outputs)
        return f"select[{inner}]"


class GroupBy(Op):
    __slots__ = ("keys", "aggs")

    def __init__(
        self,
        keys: Sequence[Tuple[str, Expr]],
        aggs: Sequence[Tuple[str, Agg]],
    ) -> None:
        self.keys = list(keys)
        self.aggs = list(aggs)

    def signature(self) -> str:
        keys = ",".join(f"{n}={e.signature()}" for n, e in self.keys)
        aggs = ",".join(f"{n}={a.signature()}" for n, a in self.aggs)
        return f"groupby[{keys};{aggs}]"


class OrderBy(Op):
    __slots__ = ("items",)

    def __init__(self, items: Sequence[Tuple[str, bool]]) -> None:
        #: (output column name, descending?) pairs
        self.items = list(items)

    def signature(self) -> str:
        inner = ",".join(f"{n}:{'d' if d else 'a'}" for n, d in self.items)
        return f"orderby[{inner}]"


class Take(Op):
    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def signature(self) -> str:
        return f"take[{self.n}]"


class Having(Op):
    """Post-aggregation filter on one output column."""

    __slots__ = ("column", "op", "value")

    _OPS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, column: str, op: str, value: Any) -> None:
        if op not in self._OPS:
            raise ValueError(f"unknown having operator {op!r}")
        self.column = column
        self.op = op
        self.value = value

    def apply(self, columns: List[str], rows: List[tuple]) -> List[tuple]:
        idx = columns.index(self.column)
        fn = self._OPS[self.op]
        return [r for r in rows if fn(r[idx], self.value)]

    def signature(self) -> str:
        return f"having[{self.column}{self.op}{self.value!r}]"


class Distinct(Op):
    """Deduplicate projected rows (SQL DISTINCT)."""

    __slots__ = ()

    @staticmethod
    def apply(rows: List[tuple]) -> List[tuple]:
        seen = set()
        out = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out

    def signature(self) -> str:
        return "distinct[]"


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


class Result:
    """Query result: column names plus row tuples."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: List[str], rows: List[tuple]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, i):
        return self.rows[i]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Result {self.columns} x {len(self.rows)} rows>"


# ----------------------------------------------------------------------
# The Query
# ----------------------------------------------------------------------


class _Grouped:
    """Intermediate returned by :meth:`Query.group_by`; call ``aggregate``."""

    __slots__ = ("_query", "_keys")

    def __init__(self, query: "Query", keys: Sequence[Tuple[str, Expr]]) -> None:
        self._query = query
        self._keys = list(keys)

    def aggregate(self, **aggs: Agg) -> "Query":
        for name, agg in aggs.items():
            if not isinstance(agg, Agg):
                raise TypeError(f"{name} must be an Agg (Sum/Count/Avg/Min/Max)")
        return self._query._extend(GroupBy(self._keys, list(aggs.items())))


class Query:
    """An immutable logical query over one source."""

    __slots__ = ("source", "ops")

    def __init__(self, source: Any, ops: Tuple[Op, ...] = ()) -> None:
        self.source = source
        self.ops = ops

    def _extend(self, op: Op) -> "Query":
        return Query(self.source, self.ops + (op,))

    # -- plan construction ----------------------------------------------

    def where(self, pred: Union[Expr, Field]) -> "Query":
        return self._extend(Where(Expr.wrap(pred)))

    def where_in(self, exprs, subquery: "Query", negated: bool = False) -> "Query":
        if not isinstance(exprs, (tuple, list)):
            exprs = (exprs,)
        wrapped = tuple(Expr.wrap(e) for e in exprs)
        return self._extend(WhereIn(wrapped, subquery, negated))

    def select(self, **outputs) -> "Query":
        items = [(name, Expr.wrap(expr)) for name, expr in outputs.items()]
        return self._extend(Select(items))

    def group_by(self, **keys) -> _Grouped:
        items = [(name, Expr.wrap(expr)) for name, expr in keys.items()]
        return _Grouped(self, items)

    def aggregate(self, **aggs: Agg) -> "Query":
        """Global (ungrouped) aggregation."""
        return self._extend(GroupBy([], list(aggs.items())))

    def order_by(self, *items: Union[str, Tuple[str, bool]]) -> "Query":
        normalised: List[Tuple[str, bool]] = []
        for item in items:
            if isinstance(item, str):
                if item.startswith("-"):
                    normalised.append((item[1:], True))
                else:
                    normalised.append((item, False))
            else:
                normalised.append((item[0], bool(item[1])))
        return self._extend(OrderBy(normalised))

    def take(self, n: int) -> "Query":
        return self._extend(Take(n))

    def having(self, column: str, op: str, value: Any) -> "Query":
        """Filter aggregated rows on one output column (SQL HAVING)."""
        return self._extend(Having(column, op, value))

    def distinct(self) -> "Query":
        """Deduplicate projected rows (SQL DISTINCT)."""
        return self._extend(Distinct())

    # -- execution --------------------------------------------------------

    def signature(self) -> str:
        source_kind = type(self.source).__name__
        schema = getattr(self.source, "schema", None)
        schema_name = schema.__name__ if schema is not None else "?"
        ops = ";".join(op.signature() for op in self.ops)
        return f"{source_kind}<{schema_name}>:{ops}"

    def run(
        self,
        engine: str = "compiled",
        params: Optional[Dict[str, Any]] = None,
        flavor: Optional[str] = None,
        workers: Optional[int] = None,
        prune: Optional[bool] = None,
        planner: Optional[bool] = None,
        **kwparams: Any,
    ) -> Result:
        """Execute the query and return a :class:`Result`.

        ``engine`` is ``"compiled"`` (default — the paper's approach) or
        ``"interpreted"`` (the LINQ-to-objects baseline).  ``flavor``
        overrides the compiled backend (e.g. ``"smc-safe"`` to model the
        paper's SMC (C#) series on a collection that defaults to the
        unsafe backend).  ``workers`` > 1 fans the scan out over the
        morsel-parallel executor; ``prune=False`` disables block-level
        zone-map pruning; ``planner=False`` disables cost-based conjunct
        ordering and access-path choice (all three only affect the
        vectorised SMC backends).  Dynamic parameters may be passed via
        ``params=`` or as keyword arguments.
        """
        merged = dict(params or {})
        merged.update(kwparams)
        if engine == "interpreted":
            from repro.query.interpreter import run_interpreted

            return run_interpreted(self, merged)
        if engine == "compiled":
            from repro.query.compiler import run_compiled

            return run_compiled(
                self,
                merged,
                flavor=flavor,
                workers=workers,
                prune=prune if prune is not None else True,
                planner=planner,
            )
        raise ValueError(f"unknown engine {engine!r}")

    def explain(
        self,
        flavor: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        planner: Optional[bool] = None,
    ) -> str:
        """Human-readable plan: source, operators, compiled backend, and
        (for the vectorised SMC backends) the cost-based planner's
        ordered conjuncts with estimated selectivities, the chosen
        access path, and — once the query has executed — estimated vs
        actual rows from the feedback registry."""
        from repro.query.compiler import flavor_for

        try:
            backend = flavor or flavor_for(self.source)
        except Exception:
            backend = "interpreted-only"
        lines = [
            f"Query over {type(self.source).__name__}"
            f"<{getattr(self.source, 'schema', type(None)).__name__}>",
            f"  backend: {backend}",
        ]
        for op in self.ops:
            lines.append(f"  -> {op.signature()}")
        if backend in ("columnar", "smc-unsafe"):
            from repro.query import planner as _planner

            use_planner = (
                _planner.enabled() if planner is None else bool(planner)
            )
            if use_planner:
                filters = [
                    op.pred for op in self.ops if isinstance(op, Where)
                ]
                try:
                    __, __, info = _planner.plan_scan(
                        self.signature(), filters, dict(params or {}),
                        self.source,
                    )
                except Exception:
                    info = None
                if info is not None:
                    lines.extend(info.explain_lines())
                    obs = _planner.observation(self.signature())
                    if obs is not None:
                        lines.append(
                            f"  last run: {obs['rows_matched']} rows matched "
                            f"of {obs['rows_scanned']} scanned "
                            f"(est {obs['est_rows']}), "
                            f"{obs['blocks_pruned']} blocks pruned / "
                            f"{obs['blocks_scanned']} scanned"
                        )
            else:
                lines.append("  planner: off (declaration-order predicates)")
        return "\n".join(lines)

    def count(self, **kwparams: Any) -> int:
        """Number of rows the query produces."""
        plan_has_agg = any(isinstance(op, GroupBy) for op in self.ops)
        if plan_has_agg:
            return len(self.run(**kwparams))
        counted = self.aggregate(n=Count()).run(**kwparams)
        return counted.rows[0][0] if counted.rows else 0

    def sum(self, expr, **kwparams: Any):
        """Scalar sum of *expr* over the qualifying rows."""
        result = self.aggregate(v=Sum(Expr.wrap(expr))).run(**kwparams)
        return result.rows[0][0] if result.rows else 0

    def avg(self, expr, **kwparams: Any):
        """Scalar average of *expr* over the qualifying rows."""
        result = self.aggregate(v=Avg(Expr.wrap(expr))).run(**kwparams)
        return result.rows[0][0] if result.rows else None

    def min(self, expr, **kwparams: Any):
        """Scalar minimum of *expr* over the qualifying rows."""
        result = self.aggregate(v=Min(Expr.wrap(expr))).run(**kwparams)
        return result.rows[0][0] if result.rows else None

    def max(self, expr, **kwparams: Any):
        """Scalar maximum of *expr* over the qualifying rows."""
        result = self.aggregate(v=Max(Expr.wrap(expr))).run(**kwparams)
        return result.rows[0][0] if result.rows else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Query {self.signature()}>"


def query(source: Any) -> Query:
    """Start a query over *source* (collections expose ``.query()`` too)."""
    return Query(source)


def ref_key(field_or_expr) -> RefIdentity:
    """Group/join key based on reference identity (reference-based joins)."""
    from repro.query.expressions import ref_identity

    return ref_identity(field_or_expr)
