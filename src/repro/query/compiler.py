"""Query compilation: logical plans → specialised imperative functions.

The paper transforms every statically-known LINQ query over an SMC into a
generated imperative function with the dynamic parameters as arguments
(section 2), and the generated code scans the collection's memory blocks
directly (section 4).  This module does the same: it fingerprints
(query structure, source kind, pointer mode), generates Python source
specialised to the schema's slot layout, compiles it once, and caches the
function.  Subsequent executions only re-bind parameters.

Backends ("flavours"), mirroring the evaluation series of the paper:

``managed``
    attribute-access loop over plain Python record objects — the paper's
    *compiled C# over managed collections* (the ``List<T>`` /
    ``ConcurrentDictionary`` series of Figure 11);
``smc-safe``
    scans SMC blocks via the slot directory but decodes every field into
    Python objects (Decimal, date, str) — the paper's *SMC (C#)* series:
    compiled code equivalent to the managed one except for enumeration;
``smc-unsafe``
    operates on the raw stored representation: scaled-int64 fixed-point
    decimal arithmetic, integer day dates, padded-byte strings — the
    paper's *SMC (unsafe C#)* series with direct pointer access to
    primitive values;
``columnar``
    vectorised NumPy kernels over columnar collections (section 4.1),
    dispatched to :mod:`repro.query.columnar_exec`.

When the memory manager runs in **direct-pointer mode** (section 6) the
SMC backends navigate references through raw slot addresses validated
against slot-header incarnations, skipping the indirection-table lookup.

Null navigation note: the interpreter evaluates a navigation through a
null reference to ``None``; the compiled backends *filter out* such rows
(the row cannot satisfy a predicate over missing data).  TPC-H foreign
keys are never null, so the engines agree on every workload in this repo.
"""

from __future__ import annotations

import datetime as _dt
import struct
import threading
from decimal import Decimal
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import NullReferenceError
from repro.memory.addressing import NULL_ADDRESS
from repro.memory.indirection import FLAG_MASK, INC_MASK
from repro.query import runtime as _runtime
from repro.query.builder import (
    Distinct,
    GroupBy,
    Having,
    OrderBy,
    Query,
    Result,
    Select,
    Take,
    Where,
    WhereIn,
)
from repro.query.expressions import (
    Between,
    BinOp,
    BoolOp,
    CaseWhen,
    Cmp,
    Const,
    Expr,
    FieldRef,
    InSet,
    Not,
    Param,
    RefIdentity,
    StrContains,
    StrPrefix,
    YearOf,
    dtype_of_const,
)
from repro.schema.fields import (
    CharField,
    DateField,
    DecimalField,
    Field,
    Float64Field,
    RefField,
    VarStringField,
    date_to_days,
)

_CACHE: Dict[tuple, "_Compiled"] = {}
_CACHE_LOCK = threading.Lock()
_CACHE_HITS = 0
_CACHE_MISSES = 0


class CompileError(TypeError):
    """Raised when a plan cannot be compiled for the requested backend."""


# ----------------------------------------------------------------------
# Public driver
# ----------------------------------------------------------------------


def flavor_for(source: Any) -> str:
    """Default compiled flavour for a source object."""
    kind = getattr(source, "compiled_flavor", None)
    if kind is not None:
        return kind
    raise CompileError(
        f"source {type(source).__name__} does not support compiled queries"
    )


def run_compiled(
    query: Query,
    params: Dict[str, Any],
    flavor: Optional[str] = None,
    workers: Optional[int] = None,
    prune: bool = True,
    planner: Optional[bool] = None,
) -> Result:
    flavor = flavor or flavor_for(query.source)
    if flavor in ("columnar", "smc-unsafe"):
        # Both SMC layouts run on the vectorised block engine; row blocks
        # are accessed through strided views (see columnar_exec).  The
        # per-row generated-code backend remains available as the
        # "smc-unsafe-scalar" ablation flavour.
        from repro.query.columnar_exec import run_columnar

        return run_columnar(
            query, params, workers=workers, prune=prune, planner=planner
        )
    if flavor == "smc-unsafe-scalar":
        flavor = "smc-unsafe"
    compiled = get_compiled(query, flavor)
    insets = _materialise_insets(query, params, flavor, compiled)
    columns, rows = compiled.fn(query.source, params, insets)
    return Result(columns, rows)


def get_compiled(query: Query, flavor: str) -> "_Compiled":
    direct = bool(getattr(query.source, "manager", None))
    direct = direct and query.source.manager.direct_pointers
    # Dictionary-encoded managers compile to code-space string kernels, so
    # the cached function is specialised on the encoding as well.  The
    # manager-level flag (not the source's own ``strdict``) decides:
    # navigation can reach dict-encoded collections from a source that has
    # no varstring fields of its own.
    dicted = bool(
        getattr(getattr(query.source, "manager", None), "string_dict", False)
    )
    key = (flavor, direct, dicted, query.signature())
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        hit = _CACHE.get(key)
        if hit is not None:
            _CACHE_HITS += 1
    if hit is not None:
        return hit
    generator = _Generator(query, flavor, direct, dicted)
    compiled = generator.build()
    with _CACHE_LOCK:
        _CACHE[key] = compiled
        _CACHE_MISSES += 1
    return compiled


def compiled_source(query: Query, flavor: Optional[str] = None) -> str:
    """The generated Python source for *query* (introspection/debugging)."""
    flavor = flavor or flavor_for(query.source)
    return get_compiled(query, flavor).source


def clear_cache() -> None:
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0


def cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the compiled-function cache."""
    with _CACHE_LOCK:
        return {
            "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES,
            "size": len(_CACHE),
        }


def _materialise_insets(
    query: Query, params: Dict[str, Any], flavor: str, compiled: "_Compiled"
) -> List[frozenset]:
    """Execute WhereIn subqueries and convert their keys to raw form."""
    insets: List[frozenset] = []
    index = 0
    for op in query.ops:
        if not isinstance(op, WhereIn):
            continue
        sub = op.subquery.run(engine="compiled", params=params)
        specs = compiled.probe_specs[index]
        keys = set()
        for row in sub.rows:
            values = row if isinstance(row, tuple) else (row,)
            converted = tuple(
                _to_raw(v, spec) for v, spec in zip(values, specs)
            )
            keys.add(converted if len(converted) > 1 else converted[0])
        insets.append(frozenset(keys))
        index += 1
    return insets


def _to_raw(value: Any, spec: Tuple[str, Any]) -> Any:
    """Convert a decoded query-output value to a backend's raw key form."""
    kind, meta = spec
    if kind == "date" and isinstance(value, _dt.date):
        return date_to_days(value)
    if kind == "decimal" and isinstance(value, Decimal):
        return int(value.scaleb(meta).to_integral_value())
    if kind == "str" and isinstance(meta, int) and isinstance(value, str):
        return value.encode("utf-8").ljust(meta, b"\x00")
    return value


# ----------------------------------------------------------------------
# dtype algebra for the unsafe backend
# ----------------------------------------------------------------------
# dtypes are (kind, meta): ("int", None), ("float", None),
# ("decimal", scale), ("date", None), ("bool", None), ("ref", None),
# ("str", width:int) for padded CHAR bytes, ("str", "py") for Python str,
# ("any", None) for python-object backends.

_PYOBJ = ("any", None)


def _field_dtype(field: Field) -> Tuple[str, Any]:
    if isinstance(field, DecimalField):
        return ("decimal", field.scale)
    if isinstance(field, DateField):
        return ("date", None)
    if isinstance(field, CharField):
        return ("str", field.width)
    if isinstance(field, VarStringField):
        return ("str", "py")
    if isinstance(field, Float64Field):
        return ("float", None)
    if isinstance(field, RefField):
        return ("ref", None)
    return ("int", None)


# ----------------------------------------------------------------------
# Zone-test derivation (block-level pruning, see repro.memory.zonemap)
# ----------------------------------------------------------------------


class ZoneTest:
    """One predicate lowered to an interval test over a block's zone.

    ``admits(lo, hi)`` answers: *may* a value in ``[lo, hi]`` (the
    block's observed bounds for ``name``) satisfy the predicate?  False
    lets the scan skip the block without touching its memory.  Tests are
    derived only from conjunctive predicates over un-navigated fields,
    and raw-value conversion must be exact — anything else simply yields
    no test (pruning is an optimisation, never a semantics change).
    """

    __slots__ = ("name", "vlo", "vhi", "lo_strict", "hi_strict", "negated")

    def __init__(
        self,
        name: str,
        vlo,
        vhi,
        lo_strict: bool = False,
        hi_strict: bool = False,
        negated: bool = False,
    ) -> None:
        self.name = name
        self.vlo = vlo
        self.vhi = vhi
        self.lo_strict = lo_strict
        self.hi_strict = hi_strict
        self.negated = negated

    def admits(self, lo, hi) -> bool:
        if self.negated:
            # `!= v`: only a constant block pinned to v cannot match.
            return not (lo == hi == self.vlo)
        if self.vlo is not None:
            if hi < self.vlo or (self.lo_strict and hi <= self.vlo):
                return False
        if self.vhi is not None:
            if lo > self.vhi or (self.hi_strict and lo >= self.vhi):
                return False
        return True

    def admits_zones(self, zones) -> bool:
        """Interval test against a block's :class:`~repro.memory.zonemap.ZoneMap`."""
        lo = zones.lo.get(self.name)
        if lo is None:
            return True
        return self.admits(lo, zones.hi[self.name])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lob = "(" if self.lo_strict else "["
        hib = ")" if self.hi_strict else "]"
        if self.negated:
            return f"<ZoneTest {self.name} != {self.vlo}>"
        return f"<ZoneTest {self.name} in {lob}{self.vlo}, {self.vhi}{hib}>"


class CodeZoneTest:
    """A string predicate lowered to dictionary-code membership.

    Built from the matching-code set of an equality / ``InSet`` /
    ``StrPrefix`` / ``StrContains`` predicate over a dictionary-encoded
    varstring field.  A block is admitted only if its zone statistics may
    contain one of the matching codes: the exact per-block code set when
    the block's domain is small, the code min/max envelope otherwise.
    An empty match set (the literal occurs nowhere in the dictionary)
    admits no block at all.
    """

    __slots__ = ("name", "codes", "_set", "_lo", "_hi")

    def __init__(self, name: str, codes) -> None:
        self.name = name
        self.codes = codes  # sorted int ndarray
        self._set: Optional[frozenset] = None
        self._lo = int(codes[0]) if len(codes) else 0
        self._hi = int(codes[-1]) if len(codes) else -1

    def admits_zones(self, zones) -> bool:
        if self._hi < self._lo:  # empty match set: no block can match
            return False
        exact = zones.codes.get(self.name)
        if exact is not None:
            if self._set is None:
                self._set = frozenset(int(c) for c in self.codes)
            return not exact.isdisjoint(self._set)
        lo = zones.lo.get(self.name)
        if lo is None:
            return True
        return not (zones.hi[self.name] < self._lo or lo > self._hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CodeZoneTest {self.name} in {len(self.codes)} codes>"


def derive_zone_tests(
    predicates: List[Expr], params: Dict[str, Any], source: Any = None
) -> List[ZoneTest]:
    """Lower a conjunction of filter predicates to block zone tests.

    *source* (the scanned collection) supplies the string dictionary for
    code-space tests over varstring predicates; without it only numeric
    tests are derived.
    """
    tests: List[ZoneTest] = []
    strdict = getattr(source, "strdict", None)
    for pred in predicates:
        _derive_zone_test(pred, params, tests, strdict)
    return tests


def _string_zone_field(expr: Expr) -> Optional[Field]:
    """The un-navigated varstring field *expr* reads, if it is exactly that."""
    if (
        isinstance(expr, FieldRef)
        and not expr.steps
        and isinstance(expr.field, VarStringField)
    ):
        return expr.field
    return None


def _derive_zone_test(
    expr: Expr, params: Dict[str, Any], out: List[ZoneTest], strdict=None
) -> None:
    if isinstance(expr, BoolOp) and expr.op == "and":
        for part in expr.parts:
            _derive_zone_test(part, params, out, strdict)
        return
    if isinstance(expr, Cmp):
        field, value, op = None, None, expr.op
        if _zone_field(expr.left) is not None:
            field = _zone_field(expr.left)
            value = _literal(expr.right, params)
        elif _zone_field(expr.right) is not None:
            field = _zone_field(expr.right)
            value = _literal(expr.left, params)
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if field is None or value is _NO_LITERAL:
            return
        if isinstance(field, VarStringField):
            if strdict is not None and op == "==" and isinstance(value, str):
                out.append(
                    CodeZoneTest(
                        field.name,
                        strdict.match_codes("inset", frozenset((value,))),
                    )
                )
            return
        raw = _zone_raw(value, _field_dtype(field))
        if raw is None:
            return
        name = field.name
        if op == "==":
            out.append(ZoneTest(name, raw, raw))
        elif op == "!=":
            out.append(ZoneTest(name, raw, raw, negated=True))
        elif op == "<":
            out.append(ZoneTest(name, None, raw, hi_strict=True))
        elif op == "<=":
            out.append(ZoneTest(name, None, raw))
        elif op == ">":
            out.append(ZoneTest(name, raw, None, lo_strict=True))
        elif op == ">=":
            out.append(ZoneTest(name, raw, None))
        return
    if isinstance(expr, Between):
        field = _zone_field(expr.inner)
        if field is None or isinstance(field, VarStringField):
            return
        lo = _literal(expr.lo, params)
        hi = _literal(expr.hi, params)
        if lo is _NO_LITERAL or hi is _NO_LITERAL:
            return
        spec = _field_dtype(field)
        rlo, rhi = _zone_raw(lo, spec), _zone_raw(hi, spec)
        if rlo is None or rhi is None:
            return
        out.append(ZoneTest(field.name, rlo, rhi))
        return
    if isinstance(expr, InSet):
        field = _zone_field(expr.inner)
        if field is None or not expr.values:
            return
        if isinstance(field, VarStringField):
            if strdict is not None and all(
                isinstance(v, str) for v in expr.values
            ):
                out.append(
                    CodeZoneTest(
                        field.name,
                        strdict.match_codes("inset", frozenset(expr.values)),
                    )
                )
            return
        spec = _field_dtype(field)
        raws = [_zone_raw(v, spec) for v in expr.values]
        if any(r is None for r in raws):
            return
        # Conservative envelope of the probe set.
        out.append(ZoneTest(field.name, min(raws), max(raws)))
        return
    if isinstance(expr, StrPrefix):
        field = _string_zone_field(expr.inner)
        if field is not None and strdict is not None:
            out.append(
                CodeZoneTest(
                    field.name, strdict.match_codes("prefix", expr.prefix)
                )
            )
        return
    if isinstance(expr, StrContains):
        field = _string_zone_field(expr.inner)
        if field is not None and strdict is not None:
            out.append(
                CodeZoneTest(
                    field.name, strdict.match_codes("contains", expr.needle)
                )
            )


def _zone_field(expr: Expr) -> Optional[Field]:
    """The un-navigated zoned field *expr* reads, if it is exactly that."""
    from repro.memory.zonemap import is_zoned

    if isinstance(expr, FieldRef) and not expr.steps and is_zoned(expr.field):
        return expr.field
    return None


_NO_LITERAL = object()


def _literal(expr: Expr, params: Dict[str, Any]):
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Param):
        return params.get(expr.name, _NO_LITERAL)
    return _NO_LITERAL


def _zone_raw(value: Any, spec: Tuple[str, Any]):
    """Exact raw-domain image of a literal, or ``None`` if unconvertible.

    Comparisons must hold in the raw domain exactly; a scaled decimal
    that does not land on an integer is kept as an (exact) ``Decimal``
    so Python's numeric ordering against int bounds stays precise.
    """
    kind, meta = spec
    if isinstance(value, bool):
        value = int(value)
    if kind == "date":
        return date_to_days(value) if isinstance(value, _dt.date) else None
    if kind == "decimal":
        if isinstance(value, Decimal):
            scaled = value.scaleb(meta)
            i = int(scaled)
            return i if scaled == i else scaled
        if isinstance(value, int):
            return value * 10 ** meta
        if isinstance(value, float):
            scaled = Decimal(value).scaleb(meta)
            i = int(scaled)
            return i if scaled == i else scaled
        return None
    if kind in ("int", "float"):
        return value if isinstance(value, (int, float)) else None
    return None


class _Compiled:
    """A cached compiled query: the function plus its metadata."""

    __slots__ = ("fn", "source", "probe_specs", "columns")

    def __init__(self, fn, source: str, probe_specs, columns) -> None:
        self.fn = fn
        self.source = source
        self.probe_specs = probe_specs
        self.columns = columns


def _slow_entry_deref(manager, entry: int, inc: int) -> int:
    """Out-of-line dereference used when the fast incarnation check fails."""
    word = manager.table.incarnation_word(entry)
    if word == inc:
        return manager.table.address_of(entry)
    if (word & ~FLAG_MASK) == (inc & INC_MASK):
        return manager._deref_frozen(entry, inc)
    raise NullReferenceError(f"entry {entry} dereferenced after removal")


def _slow_direct_deref(manager, address: int, inc: int) -> int:
    """Out-of-line slow path for direct in-row pointers."""
    from repro.core.handle import resolve_direct_pointer

    return resolve_direct_pointer(manager, address, inc)


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------


class _Generator:
    def __init__(
        self, query: Query, flavor: str, direct: bool, dicted: bool = False
    ) -> None:
        if flavor not in ("managed", "smc-safe", "smc-unsafe"):
            raise CompileError(f"unknown compiled flavour {flavor!r}")
        self.query = query
        self.flavor = flavor
        self.direct = direct
        self.dicted = dicted
        self.schema = query.source.schema
        self.layout = self.schema.__layout__
        self.env: Dict[str, Any] = {
            "_Decimal": Decimal,
            "_days_to_date": __import__(
                "repro.schema.fields", fromlist=["days_to_date"]
            ).days_to_date,
            "_date_to_days": date_to_days,
            "_scan": _runtime.scan_blocks,
            "_slow_entry": _slow_entry_deref,
            "_slow_direct": _slow_direct_deref,
            "_NRE": NullReferenceError,
        }
        self._uid = 0
        self.prelude: List[str] = []
        self.body: List[str] = []
        self.finale: List[str] = []
        #: per-row navigation cache: steps tuple -> (bufvar, offvar)
        self._nav_cache: Dict[tuple, Tuple[str, str]] = {}
        self._param_cache: Dict[tuple, str] = {}
        #: per-schema string-dictionary prelude bindings (dict mode)
        self._sdict_vars: Dict[Tuple[str, str], str] = {}
        self.probe_specs: List[List[Tuple[str, Any]]] = []
        self._inset_count = 0

    # -- small helpers ---------------------------------------------------

    def uid(self, prefix: str) -> str:
        self._uid += 1
        return f"_{prefix}{self._uid}"

    def bind(self, value: Any, prefix: str = "c") -> str:
        name = self.uid(prefix)
        self.env[name] = value
        return name

    def unpacker(self, fmt: str) -> str:
        key = f"_u_{fmt}"
        if key not in self.env:
            self.env[key] = struct.Struct("<" + fmt).unpack_from
        return key

    def _sdict_bind(self, cls_name: str, attr: str) -> str:
        """Prelude-bind a schema's string dictionary (or an attribute of
        it), resolved from ``_mgr`` per call — never baked into the env."""
        key = (cls_name, attr)
        var = self._sdict_vars.get(key)
        if var is None:
            var = self.uid("sd")
            expr = f"_mgr.collections[{cls_name!r}].strdict"
            if attr:
                expr += f".{attr}"
            self.prelude.append(f"{var} = {expr}")
            self._sdict_vars[key] = var
        return var

    def _strcode_probe(
        self, inner: Expr, row_lines: List[str]
    ) -> Optional[Tuple[str, str]]:
        """Raw dictionary-code access for code-space string predicates.

        Returns ``(code_expr, class_name)`` when *inner* is a direct
        varstring field read in the unsafe flavour of a dict-encoded
        source, else ``None`` (caller falls back to decoded text).
        """
        if self.flavor != "smc-unsafe" or not self.dicted:
            return None
        if not isinstance(inner, FieldRef) or not isinstance(
            inner.field, VarStringField
        ):
            return None
        bufvar, offvar = self._navigate(inner.steps, row_lines)
        u = self.unpacker("q")
        field = inner.field
        # max(..., 0) folds the NULL_ADDRESS row template to code 0 ("").
        code = f"max({u}({bufvar}, {offvar} + {field.offset})[0], 0)"
        return code, field.owner.__name__

    def _strcode_member(
        self, probe: Tuple[str, str], kind: str, arg: Any
    ) -> Tuple[str, Tuple[str, Any]]:
        """Rewrite a string predicate as code-set membership.

        The matching-code set is fetched once per call in the prelude
        (``StringDict.match_set`` is version-cached, so steady-state cost
        is a dict lookup) and the per-row test collapses to ``code in
        set`` — no heap read, no decode.
        """
        code, cls_name = probe
        matcher = self._sdict_bind(cls_name, "match_set")
        argvar = self.bind(arg, "marg")
        var = self.uid("ms")
        self.prelude.append(f"{var} = {matcher}({kind!r}, {argvar})")
        return f"({code} in {var})", ("bool", None)

    # -- entry point -------------------------------------------------------

    def build(self) -> _Compiled:
        plan = list(self.query.ops)
        filters: List[Expr] = []
        insets: List[WhereIn] = []
        terminal: Optional[Any] = None
        post: List[Any] = []
        for op in plan:
            if isinstance(op, Where):
                if terminal is not None:
                    raise CompileError("where after aggregation not supported")
                filters.append(op.pred)
            elif isinstance(op, WhereIn):
                if terminal is not None:
                    raise CompileError("where_in after aggregation not supported")
                insets.append(op)
            elif isinstance(op, (Select, GroupBy)):
                if terminal is not None:
                    raise CompileError("only one projection/aggregation allowed")
                terminal = op
            elif isinstance(op, (OrderBy, Take, Having, Distinct)):
                post.append(op)
            else:
                raise CompileError(f"cannot compile op {op!r}")

        self._emit_prelude()
        row_lines: List[str] = []
        self._emit_filters(row_lines, filters, insets)
        columns = self._emit_terminal(row_lines, terminal)
        self._emit_loop(row_lines)
        self._emit_post(post, columns, terminal)

        src_lines = ["def __query(source, params, insets):"]
        src_lines += ["    " + ln for ln in self.prelude]
        src_lines += ["    " + ln for ln in self.body]
        src_lines += ["    " + ln for ln in self.finale]
        src_lines.append(f"    return {columns!r}, _rows")
        source = "\n".join(src_lines)
        scope: Dict[str, Any] = dict(self.env)
        exec(compile(source, f"<query:{self.flavor}>", "exec"), scope)
        return _Compiled(scope["__query"], source, self.probe_specs, columns)

    # -- prelude -----------------------------------------------------------

    def _emit_prelude(self) -> None:
        p = self.prelude
        if self.flavor == "managed":
            p.append("_records = source.records_list()")
        else:
            p.append("_mgr = source.manager")
            p.append("_space = _mgr.space")
            p.append("_blocks = _space._blocks")
            p.append("_table = _mgr.table")
            p.append("_tinc = _table._inc")
            p.append("_taddr = _table._addr")
            p.append("_shift = _space.block_shift")
            p.append("_mask = _space.block_size - 1")
            # Resolved per call: compiled functions are cached and shared
            # across managers, so the heap cannot be baked into the env.
            p.append("_heap = _mgr.strings")
        p.append("_rows = []")

    # -- row loop ------------------------------------------------------------

    def _emit_loop(self, row_lines: List[str]) -> None:
        b = self.body
        if self.flavor == "managed":
            b.append("for _r in _records:")
            b += ["    " + ln for ln in row_lines]
            return
        slot_size = self.layout.slot_size
        b.append("_mgr.epochs.enter_critical_section()")
        b.append("try:")
        b.append("    for _blk in _scan(_mgr, source.context):")
        b.append("        buf = _blk.buf")
        b.append("        _bp = _blk.backptrs")
        b.append("        _base = _blk.object_offset")
        b.append("        for _s in _blk.valid_slots().tolist():")
        b.append(f"            off = _base + _s * {slot_size}")
        b += ["            " + ln for ln in row_lines]
        b.append("finally:")
        b.append("    _mgr.epochs.exit_critical_section()")

    # -- filters ----------------------------------------------------------

    def _emit_filters(
        self, row_lines: List[str], filters: List[Expr], insets: List[WhereIn]
    ) -> None:
        for pred in filters:
            code, dtype = self._expr(pred, row_lines)
            row_lines.append(f"if not ({code}): continue")
        for op in insets:
            specs: List[Tuple[str, Any]] = []
            codes: List[str] = []
            for e in op.exprs:
                code, dtype = self._expr(e, row_lines)
                codes.append(code)
                specs.append(dtype)
            self.probe_specs.append(specs)
            set_name = f"insets[{self._inset_count}]"
            self._inset_count += 1
            probe = codes[0] if len(codes) == 1 else "(" + ", ".join(codes) + ")"
            neg = "" if op.negated else "not "
            row_lines.append(f"if {neg}({probe}) in {set_name}: continue")

    # -- terminal op -------------------------------------------------------

    def _emit_terminal(self, row_lines: List[str], terminal) -> List[str]:
        if terminal is None:
            return self._emit_enumeration(row_lines)
        if isinstance(terminal, Select):
            return self._emit_select(row_lines, terminal)
        return self._emit_groupby(row_lines, terminal)

    def _emit_enumeration(self, row_lines: List[str]) -> List[str]:
        if self.flavor == "managed":
            row_lines.append("_rows.append(_r)")
        else:
            # Yield references to qualifying objects, as the paper's
            # generated enumeration code does (section 4 listing).
            self.env["_Ref"] = __import__(
                "repro.memory.reference", fromlist=["Ref"]
            ).Ref
            row_lines.append("_e = int(_bp[_s])")
            row_lines.append(
                f"_rows.append(_Ref(_mgr, _e, int(_tinc[_e]) & {INC_MASK}))"
            )
        return ["*"]

    def _emit_select(self, row_lines: List[str], op: Select) -> List[str]:
        parts = []
        for __, expr in op.outputs:
            code, dtype = self._expr(expr, row_lines)
            parts.append(self._decode(code, dtype))
        row_lines.append("_rows.append((" + ", ".join(parts) + ",))")
        return [name for name, __ in op.outputs]

    def _emit_groupby(self, row_lines: List[str], op: GroupBy) -> List[str]:
        self.prelude.append("_groups = {}")
        key_dtypes: List[Tuple[str, Any]] = []
        key_codes: List[str] = []
        for __, expr in op.keys:
            code, dtype = self._expr(expr, row_lines)
            key_codes.append(code)
            key_dtypes.append(dtype)
        if key_codes:
            key = (
                key_codes[0]
                if len(key_codes) == 1
                else "(" + ", ".join(key_codes) + ")"
            )
        else:
            key = "None"

        agg_updates: List[str] = []
        inits: List[str] = []
        agg_dtypes: List[Tuple[str, Any]] = []
        for i, (__, agg) in enumerate(op.aggs):
            if agg.kind == "count":
                inits.append("0")
                agg_updates.append(f"_acc[{i}] += 1")
                agg_dtypes.append(("int", None))
                continue
            code, dtype = self._expr(agg.expr, row_lines)
            val = self.uid("v")
            row_lines.append(f"{val} = {code}")
            if agg.kind == "sum":
                inits.append("0")
                agg_updates.append(f"_acc[{i}] += {val}")
            elif agg.kind == "avg":
                inits.append("[0, 0]")
                agg_updates.append(
                    f"_acc[{i}][0] += {val}; _acc[{i}][1] += 1"
                )
            elif agg.kind == "min":
                inits.append("None")
                agg_updates.append(
                    f"if _acc[{i}] is None or {val} < _acc[{i}]: _acc[{i}] = {val}"
                )
            elif agg.kind == "max":
                inits.append("None")
                agg_updates.append(
                    f"if _acc[{i}] is None or {val} > _acc[{i}]: _acc[{i}] = {val}"
                )
            agg_dtypes.append(dtype)

        row_lines.append(f"_k = {key}")
        row_lines.append("_acc = _groups.get(_k)")
        row_lines.append("if _acc is None:")
        row_lines.append(f"    _groups[_k] = _acc = [{', '.join(inits)}]")
        row_lines.extend(agg_updates)

        # Finalisation: decode raw keys and aggregate values.
        f = self.finale
        f.append("for _k, _acc in _groups.items():")
        key_parts = []
        if len(op.keys) == 1:
            key_parts.append(self._decode("_k", key_dtypes[0]))
        else:
            for i in range(len(op.keys)):
                key_parts.append(self._decode(f"_k[{i}]", key_dtypes[i]))
        agg_parts = []
        for i, (__, agg) in enumerate(op.aggs):
            dtype = agg_dtypes[i]
            if agg.kind == "count":
                agg_parts.append(f"_acc[{i}]")
            elif agg.kind == "avg":
                agg_parts.append(self._decode_avg(f"_acc[{i}]", dtype))
            elif agg.kind == "sum":
                agg_parts.append(self._decode(f"_acc[{i}]", dtype))
            else:  # min / max
                agg_parts.append(self._decode(f"_acc[{i}]", dtype))
        all_parts = ", ".join(key_parts + agg_parts)
        f.append(f"    _rows.append(({all_parts},))")
        return [name for name, __ in op.keys] + [name for name, __ in op.aggs]

    # -- post ops -----------------------------------------------------------

    def _emit_post(self, post, columns: List[str], terminal) -> None:
        for op in post:
            if isinstance(op, OrderBy):
                for name, desc in reversed(op.items):
                    idx = columns.index(name)
                    self.finale.append(
                        f"_rows.sort(key=lambda r: r[{idx}], reverse={desc})"
                    )
            elif isinstance(op, Take):
                self.finale.append(f"_rows = _rows[:{op.n}]")
            elif isinstance(op, Having):
                fn = self.bind(op, "hv")
                self.finale.append(
                    f"_rows = {fn}.apply({columns!r}, _rows)"
                )
            elif isinstance(op, Distinct):
                self.env.setdefault("_distinct", Distinct.apply)
                self.finale.append("_rows = _distinct(_rows)")

    # -- value decoding (raw -> python) --------------------------------------

    def _decode(self, code: str, dtype: Tuple[str, Any]) -> str:
        if self.flavor != "smc-unsafe":
            return code
        kind, meta = dtype
        if kind == "decimal":
            return f"_Decimal({code}).scaleb(-{meta})"
        if kind == "date":
            return f"_days_to_date({code})"
        if kind == "str" and isinstance(meta, int):
            return f"({code}).rstrip(b' \\x00').decode()"
        return code

    def _decode_avg(self, acc: str, dtype: Tuple[str, Any]) -> str:
        if self.flavor == "smc-unsafe" and dtype[0] == "decimal":
            return (
                f"(_Decimal({acc}[0]) / {acc}[1]).scaleb(-{dtype[1]})"
                f" if {acc}[1] else None"
            )
        return f"({acc}[0] / {acc}[1] if {acc}[1] else None)"

    # ======================================================================
    # Expression compilation
    # ======================================================================

    def _expr(self, expr: Expr, row_lines: List[str]) -> Tuple[str, Tuple[str, Any]]:
        if isinstance(expr, Const):
            return self._const(expr.value)
        if isinstance(expr, Param):
            return f"params[{expr.name!r}]", ("param", expr.name)
        if isinstance(expr, FieldRef):
            return self._field_access(expr, row_lines)
        if isinstance(expr, RefIdentity):
            return self._ref_identity(expr, row_lines)
        if isinstance(expr, BinOp):
            return self._binop(expr, row_lines)
        if isinstance(expr, Cmp):
            return self._cmp(expr, row_lines)
        if isinstance(expr, BoolOp):
            parts = [self._expr(p, row_lines)[0] for p in expr.parts]
            joiner = f" {expr.op} "
            return "(" + joiner.join(parts) + ")", ("bool", None)
        if isinstance(expr, Not):
            inner, __ = self._expr(expr.inner, row_lines)
            return f"(not {inner})", ("bool", None)
        if isinstance(expr, Between):
            value, vdt = self._expr(expr.inner, row_lines)
            lo, ldt = self._expr(expr.lo, row_lines)
            hi, hdt = self._expr(expr.hi, row_lines)
            lo, value1 = self._unify(lo, ldt, value, vdt)
            hi, value2 = self._unify(hi, hdt, value, vdt)
            # value1/value2 identical unless scales differed; recompute value
            return f"({value1} >= {lo} and {value2} <= {hi})", ("bool", None)
        if isinstance(expr, InSet):
            if all(isinstance(v, str) for v in expr.values):
                probe = self._strcode_probe(expr.inner, row_lines)
                if probe is not None:
                    return self._strcode_member(
                        probe, "inset", frozenset(expr.values)
                    )
            inner, dtype = self._expr(expr.inner, row_lines)
            values = frozenset(self._raw_const(v, dtype) for v in expr.values)
            name = self.bind(values, "set")
            return f"({inner} in {name})", ("bool", None)
        if isinstance(expr, CaseWhen):
            cond, __ = self._expr(expr.cond, row_lines)
            then, tdt = self._expr(expr.then, row_lines)
            other, odt = self._expr(expr.otherwise, row_lines)
            then, other, dtype = self._align(then, tdt, other, odt, "+")
            return f"(({then}) if ({cond}) else ({other}))", dtype
        if isinstance(expr, YearOf):
            inner, idt = self._expr(expr.inner, row_lines)
            if self.flavor == "smc-unsafe":
                return f"_days_to_date({inner}).year", ("int", None)
            return f"({inner}).year", ("int", None)
        if isinstance(expr, StrPrefix):
            probe = self._strcode_probe(expr.inner, row_lines)
            if probe is not None:
                return self._strcode_member(probe, "prefix", expr.prefix)
            inner, dtype = self._expr(expr.inner, row_lines)
            if self.flavor == "smc-unsafe" and isinstance(dtype[1], int):
                prefix = self.bind(expr.prefix.encode("utf-8"), "pre")
            else:
                prefix = self.bind(expr.prefix, "pre")
            return f"({inner}.startswith({prefix}))", ("bool", None)
        if isinstance(expr, StrContains):
            probe = self._strcode_probe(expr.inner, row_lines)
            if probe is not None:
                return self._strcode_member(probe, "contains", expr.needle)
            inner, dtype = self._expr(expr.inner, row_lines)
            if self.flavor == "smc-unsafe" and isinstance(dtype[1], int):
                needle = self.bind(expr.needle.encode("utf-8"), "ndl")
            else:
                needle = self.bind(expr.needle, "ndl")
            return f"({needle} in {inner})", ("bool", None)
        raise CompileError(f"cannot compile expression {expr!r}")

    # -- constants / params -------------------------------------------------

    def _const(self, value: Any) -> Tuple[str, Tuple[str, Any]]:
        kind = dtype_of_const(value)
        if self.flavor != "smc-unsafe":
            return self.bind(value), _PYOBJ if kind == "str" else (kind, None)
        if kind == "decimal":
            scale = max(0, -value.as_tuple().exponent)
            raw = int(value.scaleb(scale).to_integral_value())
            return self.bind(raw), ("decimal", scale)
        if kind == "date":
            return self.bind(date_to_days(value)), ("date", None)
        if kind == "str":
            return self.bind(value), ("str", "py")
        if kind == "float":
            return self.bind(value), ("float", None)
        return self.bind(value), ("int", None)

    def _raw_const(self, value: Any, dtype: Tuple[str, Any]) -> Any:
        """Convert a literal to the raw form matching *dtype*."""
        if self.flavor != "smc-unsafe":
            return value
        return _to_raw(value, dtype)

    # -- field access ----------------------------------------------------

    def _field_access(
        self, expr: FieldRef, row_lines: List[str]
    ) -> Tuple[str, Tuple[str, Any]]:
        field = expr.field
        if self.flavor == "managed":
            path = ".".join(s.name for s in expr.steps)
            prefix = f"_r.{path}." if path else "_r."
            dtype = _PYOBJ if not isinstance(field, RefField) else ("ref", None)
            return f"{prefix}{field.name}", dtype
        bufvar, offvar = self._navigate(expr.steps, row_lines)
        return self._read_field(field, bufvar, offvar, row_lines)

    def _read_field(
        self, field: Field, bufvar: str, offvar: str, row_lines: List[str]
    ) -> Tuple[str, Tuple[str, Any]]:
        off = f"{offvar} + {field.offset}"
        if isinstance(field, RefField):
            # The stored reference word is the object's identity token.
            u = self.unpacker("q")
            return f"{u}({bufvar}, {off})[0]", ("ref", None)
        if self.flavor == "smc-safe":
            fname = self.bind(field, "F")
            return f"{fname}.decode_from({bufvar}, {off}, _mgr)", _PYOBJ
        # smc-unsafe: raw representation.
        if isinstance(field, CharField):
            u = self.unpacker(f"{field.width}s")
            return f"{u}({bufvar}, {off})[0]", ("str", field.width)
        if isinstance(field, VarStringField):
            u = self.unpacker("q")
            if self.dicted:
                reader = self._sdict_bind(field.owner.__name__, "text_of")
                return f"{reader}({u}({bufvar}, {off})[0])", ("str", "py")
            return f"_heap.read({u}({bufvar}, {off})[0])", ("str", "py")
        u = self.unpacker(field.fmt)
        return f"{u}({bufvar}, {off})[0]", _field_dtype(field)

    # -- navigation --------------------------------------------------------

    def _navigate(
        self, steps: Tuple[RefField, ...], row_lines: List[str]
    ) -> Tuple[str, str]:
        """Emit reference-navigation code; returns (buf, offset) variables.

        Navigations are cached per path per row, so several fields read
        through the same reference share one dereference — as the paper's
        generated code does.
        """
        if not steps:
            return "buf", "off"
        cached = self._nav_cache.get(steps)
        if cached is not None:
            return cached
        srcbuf, srcoff = self._navigate(steps[:-1], row_lines)
        field = steps[-1]
        uref = self.unpacker("qi")
        w = self.uid("w")
        winc = self.uid("i")
        row_lines.append(
            f"{w}, {winc} = {uref}({srcbuf}, {srcoff} + {field.offset})"
        )
        row_lines.append(f"if {w} == {NULL_ADDRESS}: continue")
        addr = self.uid("a")
        if self.direct:
            blk = self.uid("b")
            row_lines.append(f"{blk} = _blocks[{w} >> _shift]")
            u32 = self.unpacker("I")
            row_lines.append(
                f"if {u32}({blk}.buf, {w} & _mask)[0] != {winc}: "
                f"{w} = _slow_direct(_mgr, {w}, {winc}); "
                f"{blk} = _blocks[{w} >> _shift]"
            )
            bufvar = self.uid("nb")
            offvar = self.uid("no")
            row_lines.append(f"{bufvar} = {blk}.buf")
            row_lines.append(f"{offvar} = {w} & _mask")
        else:
            row_lines.append(
                f"{addr} = _taddr[{w}] if _tinc[{w}] == {winc} "
                f"else _slow_entry(_mgr, {w}, {winc})"
            )
            bufvar = self.uid("nb")
            offvar = self.uid("no")
            row_lines.append(f"{bufvar} = _blocks[{addr} >> _shift].buf")
            row_lines.append(f"{offvar} = {addr} & _mask")
        self._nav_cache[steps] = (bufvar, offvar)
        return bufvar, offvar

    def _ref_identity(
        self, expr: RefIdentity, row_lines: List[str]
    ) -> Tuple[str, Tuple[str, Any]]:
        if self.flavor == "managed":
            path = ".".join(s.name for s in expr.steps)
            return f"_r.{path}", ("ref", None)
        bufvar, offvar = self._navigate(expr.steps[:-1], row_lines)
        return self._read_field(expr.steps[-1], bufvar, offvar, row_lines)

    # -- operators -----------------------------------------------------------

    def _binop(self, expr: BinOp, row_lines: List[str]) -> Tuple[str, Tuple[str, Any]]:
        lcode, ldt = self._expr(expr.left, row_lines)
        rcode, rdt = self._expr(expr.right, row_lines)
        lcode, rcode, dtype = self._align(lcode, ldt, rcode, rdt, expr.op)
        return f"({lcode} {expr.op} {rcode})", dtype

    def _cmp(self, expr: Cmp, row_lines: List[str]) -> Tuple[str, Tuple[str, Any]]:
        lcode, ldt = self._expr(expr.left, row_lines)
        rcode, rdt = self._expr(expr.right, row_lines)
        lcode, rcode, __ = self._align(lcode, ldt, rcode, rdt, "cmp")
        return f"({lcode} {expr.op} {rcode})", ("bool", None)

    def _unify(self, acode, adt, bcode, bdt):
        a2, b2, __ = self._align(acode, adt, bcode, bdt, "cmp")
        return a2, b2

    def _align(
        self,
        lcode: str,
        ldt: Tuple[str, Any],
        rcode: str,
        rdt: Tuple[str, Any],
        op: str,
    ) -> Tuple[str, str, Tuple[str, Any]]:
        """Coerce two compiled operands to a common raw representation."""
        if self.flavor != "smc-unsafe":
            # Python objects interoperate directly; dates/Decimals compare
            # natively and params arrive as the caller's Python values.
            dtype = ldt if ldt != ("param", ldt[1]) else rdt
            return lcode, rcode, _PYOBJ
        # Resolve params against the other side's dtype.
        if ldt[0] == "param" and rdt[0] == "param":
            return lcode, rcode, _PYOBJ
        if ldt[0] == "param":
            lcode = self._param_raw(lcode, ldt[1], rdt)
            ldt = rdt
        if rdt[0] == "param":
            rcode = self._param_raw(rcode, rdt[1], ldt)
            rdt = ldt
        lk, lm = ldt
        rk, rm = rdt
        if lk == "decimal" or rk == "decimal":
            if op == "*":
                if lk == "decimal" and rk == "decimal":
                    return lcode, rcode, ("decimal", lm + rm)
                if lk == "decimal":
                    return lcode, rcode, ("decimal", lm)
                return lcode, rcode, ("decimal", rm)
            if op == "/":
                return (
                    f"(({lcode}) / {10 ** (lm or 0)})"
                    if lk == "decimal"
                    else lcode,
                    f"(({rcode}) / {10 ** (rm or 0)})"
                    if rk == "decimal"
                    else rcode,
                    ("float", None),
                )
            # +, -, comparisons: align scales.
            ls = lm if lk == "decimal" else 0
            rs = rm if rk == "decimal" else 0
            scale = max(ls, rs)
            if ls < scale:
                lcode = f"({lcode} * {10 ** (scale - ls)})"
            if rs < scale:
                rcode = f"({rcode} * {10 ** (scale - rs)})"
            return lcode, rcode, ("decimal", scale)
        if lk == "str" or rk == "str":
            # Align CHAR bytes with Python strings.
            if isinstance(lm, int) and rm == "py":
                rcode = f"({rcode}).encode().ljust({lm}, b'\\x00')"
                return lcode, rcode, ("str", lm)
            if isinstance(rm, int) and lm == "py":
                lcode = f"({lcode}).encode().ljust({rm}, b'\\x00')"
                return lcode, rcode, ("str", rm)
            return lcode, rcode, ldt
        if lk == "float" or rk == "float":
            return lcode, rcode, ("float", None)
        return lcode, rcode, ldt

    def _param_raw(self, code: str, name: str, target: Tuple[str, Any]) -> str:
        """Bind a raw-converted parameter in the prelude (cached per use)."""
        key = (name, target)
        cached = self._param_cache.get(key)
        if cached is not None:
            return cached
        var = self.uid("p")
        kind, meta = target
        if kind == "date":
            self.prelude.append(f"{var} = _date_to_days(params[{name!r}])")
        elif kind == "decimal":
            self.env.setdefault("_dec_raw", _decimal_raw)
            self.prelude.append(f"{var} = _dec_raw(params[{name!r}], {meta})")
        elif kind == "str" and isinstance(meta, int):
            self.prelude.append(
                f"{var} = str(params[{name!r}]).encode().ljust({meta}, b'\\x00')"
            )
        else:
            self.prelude.append(f"{var} = params[{name!r}]")
        self._param_cache[key] = var
        return var


def _decimal_raw(value: Any, scale: int) -> int:
    if isinstance(value, Decimal):
        return int(value.scaleb(scale).to_integral_value())
    if isinstance(value, int):
        return value * 10**scale
    if isinstance(value, float):
        return round(value * 10**scale)
    return int(Decimal(str(value)).scaleb(scale).to_integral_value())
