"""Wire encoding of compiled scan plans and partial accumulators.

The process executor (``repro.query.procexec``) ships a query's scan
plan to forked worker processes and receives partial accumulators back.
Expression trees cannot be pickled directly — field descriptors carry
schema-class and manager back-references, and ``Expr.__eq__`` builds
``Cmp`` nodes instead of comparing — so plans travel as explicit tagged
tuples and are re-bound against the worker's (fork-inherited) manager:
a field is named by ``(owner schema name, field name)`` and resolved
through ``manager.collections`` on arrival.

Accumulators travel as plain Python containers.  The only non-picklable
piece of their state is the ``("strcode", StringDict)`` dtype metadata;
it is translated to ``("strcode", collection_name)`` on the wire and
re-bound to the receiving process's dictionary — safe because worker
dictionaries are copy-on-write snapshots of the parent's and the
executor's fingerprint protocol discards results whenever a dictionary
changed mid-query.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Tuple

from repro.query.builder import Agg, GroupBy, Result, Select
from repro.query.expressions import (
    Between,
    BinOp,
    BoolOp,
    CaseWhen,
    Cmp,
    Const,
    Expr,
    FieldRef,
    InSet,
    Not,
    Param,
    RefIdentity,
    StrContains,
    StrPrefix,
    YearOf,
)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def _enc_field(field) -> Tuple[str, str]:
    return (field.owner.__name__, field.name)


def encode_expr(e: Expr):
    if isinstance(e, Const):
        return ("const", e.value)
    if isinstance(e, Param):
        return ("param", e.name)
    if isinstance(e, FieldRef):
        return (
            "field",
            _enc_field(e.field),
            [_enc_field(s) for s in e.steps],
        )
    if isinstance(e, RefIdentity):
        return ("refid", [_enc_field(s) for s in e.steps])
    if isinstance(e, BinOp):
        return ("bin", e.op, encode_expr(e.left), encode_expr(e.right))
    if isinstance(e, Cmp):
        return ("cmp", e.op, encode_expr(e.left), encode_expr(e.right))
    if isinstance(e, BoolOp):
        return ("bool", e.op, [encode_expr(p) for p in e.parts])
    if isinstance(e, Not):
        return ("not", encode_expr(e.inner))
    if isinstance(e, InSet):
        return ("inset", encode_expr(e.inner), sorted(e.values, key=repr))
    if isinstance(e, Between):
        return (
            "between",
            encode_expr(e.inner),
            encode_expr(e.lo),
            encode_expr(e.hi),
        )
    if isinstance(e, StrPrefix):
        return ("prefix", encode_expr(e.inner), e.prefix)
    if isinstance(e, StrContains):
        return ("contains", encode_expr(e.inner), e.needle)
    if isinstance(e, CaseWhen):
        return (
            "case",
            encode_expr(e.cond),
            encode_expr(e.then),
            encode_expr(e.otherwise),
        )
    if isinstance(e, YearOf):
        return ("year", encode_expr(e.inner))
    raise TypeError(f"cannot encode expression {e!r} for the wire")


def _schema_map(manager) -> Dict[str, Any]:
    return {c.schema.__name__: c for c in manager.collections.values()}


def _dec_field(schemas, spec):
    owner, name = spec
    coll = schemas.get(owner)
    if coll is None:
        raise ValueError(f"unknown schema {owner!r} in plan wire")
    field = coll.layout.by_name.get(name)
    if field is None:
        raise ValueError(f"{owner} has no field {name!r}")
    return field


def decode_expr(schemas, enc) -> Expr:
    tag = enc[0]
    if tag == "const":
        return Const(enc[1])
    if tag == "param":
        return Param(enc[1])
    if tag == "field":
        steps = tuple(_dec_field(schemas, s) for s in enc[2])
        return FieldRef(_dec_field(schemas, enc[1]), steps)
    if tag == "refid":
        return RefIdentity(tuple(_dec_field(schemas, s) for s in enc[1]))
    if tag == "bin":
        return BinOp(enc[1], decode_expr(schemas, enc[2]), decode_expr(schemas, enc[3]))
    if tag == "cmp":
        return Cmp(enc[1], decode_expr(schemas, enc[2]), decode_expr(schemas, enc[3]))
    if tag == "bool":
        return BoolOp(enc[1], tuple(decode_expr(schemas, p) for p in enc[2]))
    if tag == "not":
        return Not(decode_expr(schemas, enc[1]))
    if tag == "inset":
        return InSet(decode_expr(schemas, enc[1]), frozenset(enc[2]))
    if tag == "between":
        return Between(
            decode_expr(schemas, enc[1]),
            decode_expr(schemas, enc[2]),
            decode_expr(schemas, enc[3]),
        )
    if tag == "prefix":
        return StrPrefix(decode_expr(schemas, enc[1]), enc[2])
    if tag == "contains":
        return StrContains(decode_expr(schemas, enc[1]), enc[2])
    if tag == "case":
        return CaseWhen(
            decode_expr(schemas, enc[1]),
            decode_expr(schemas, enc[2]),
            decode_expr(schemas, enc[3]),
        )
    if tag == "year":
        return YearOf(decode_expr(schemas, enc[1]))
    raise ValueError(f"unknown expression tag {tag!r}")


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


def encode_plan(manager, plan) -> dict:
    """Encode a ``_ScanPlan`` for shipping to a worker process.

    Zone tests are deliberately dropped: the parent prunes with its
    authoritative zone maps before dispatching, so workers scan exactly
    the admitted blocks and never consult (possibly stale copy-on-write)
    block statistics.
    """
    source_name = None
    for name, coll in manager.collections.items():
        if coll is plan.source:
            source_name = name
            break
    if source_name is None:
        raise ValueError("scan source is not a registered collection")
    return {
        "source": source_name,
        "params": plan.params,
        "filters": [encode_expr(f) for f in plan.filters],
        "insets": [
            (
                [encode_expr(e) for e in op.exprs],
                bool(op.negated),
                sub.columns,
                sub.rows,
            )
            for op, sub in plan.inset_ops
        ],
        "terminal": _encode_terminal(plan.terminal),
    }


def _encode_terminal(terminal):
    if terminal is None:
        return None
    if isinstance(terminal, Select):
        return ("select", [(n, encode_expr(e)) for n, e in terminal.outputs])
    if isinstance(terminal, GroupBy):
        return (
            "groupby",
            [(n, encode_expr(e)) for n, e in terminal.keys],
            [
                (n, a.kind, None if a.expr is None else encode_expr(a.expr))
                for n, a in terminal.aggs
            ],
        )
    raise TypeError(f"cannot encode terminal {terminal!r}")


def decode_plan(manager, wire: dict):
    """Rebuild a ``_ScanPlan`` against the worker's manager."""
    from repro.query.columnar_exec import _ScanPlan

    schemas = _schema_map(manager)
    source = manager.collections[wire["source"]]
    filters = [decode_expr(schemas, f) for f in wire["filters"]]
    inset_ops = [
        (
            SimpleNamespace(
                exprs=tuple(decode_expr(schemas, e) for e in exprs),
                negated=negated,
            ),
            Result(columns, rows),
        )
        for exprs, negated, columns, rows in wire["insets"]
    ]
    terminal = _decode_terminal(schemas, wire["terminal"])
    return _ScanPlan(
        manager, source, wire["params"], filters, inset_ops, terminal, []
    )


def _decode_terminal(schemas, enc):
    if enc is None:
        return None
    if enc[0] == "select":
        return Select([(n, decode_expr(schemas, e)) for n, e in enc[1]])
    keys = [(n, decode_expr(schemas, e)) for n, e in enc[1]]
    aggs = [
        (n, Agg(kind, None if e is None else decode_expr(schemas, e)))
        for n, kind, e in enc[2]
    ]
    return GroupBy(keys, aggs)


# ----------------------------------------------------------------------
# Accumulators
# ----------------------------------------------------------------------


def _strdict_names(manager) -> Dict[int, str]:
    return {
        id(sd): name
        for name, coll in manager.collections.items()
        if (sd := getattr(coll, "strdict", None)) is not None
    }


def _enc_dtype(dtype, names: Dict[int, str]):
    if dtype is not None and dtype[0] == "strcode":
        # A real strcode meta is a StringDict instance, never a str, so
        # the collection name is an unambiguous wire stand-in.
        return ("strcode", names[id(dtype[1])])
    return dtype


def _dec_dtype(dtype, manager):
    if dtype is not None and dtype[0] == "strcode" and isinstance(dtype[1], str):
        return ("strcode", manager.collections[dtype[1]].strdict)
    return dtype


def encode_accumulator(manager, acc) -> dict:
    names = _strdict_names(manager)
    acc._collapse()  # fold deferred group-by chunks into `groups`
    return {
        "rows": acc.rows,
        "groups": list(acc.groups.items()),
        "key_dtypes": (
            None
            if acc.key_dtypes is None
            else [_enc_dtype(d, names) for d in acc.key_dtypes]
        ),
        "agg_dtypes": (
            None
            if acc.agg_dtypes is None
            else [_enc_dtype(d, names) for d in acc.agg_dtypes]
        ),
        "rows_scanned": acc.rows_scanned,
        "rows_matched": acc.rows_matched,
    }


def decode_accumulator(manager, terminal, wire: dict):
    from repro.query.columnar_exec import _Accumulator

    acc = _Accumulator(terminal)
    acc.rows = list(wire["rows"])
    acc.groups = dict(wire["groups"])
    if wire["key_dtypes"] is not None:
        acc.key_dtypes = [_dec_dtype(d, manager) for d in wire["key_dtypes"]]
    if wire["agg_dtypes"] is not None:
        acc.agg_dtypes = [_dec_dtype(d, manager) for d in wire["agg_dtypes"]]
    acc.rows_scanned = int(wire["rows_scanned"])
    acc.rows_matched = int(wire.get("rows_matched", 0))
    return acc
