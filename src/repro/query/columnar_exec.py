"""Vectorised query execution over SMC blocks (row and columnar layouts).

The paper's generated query code iterates a block's slot directory and
touches raw object fields directly (section 4); for the columnar layout it
accesses per-field columns (section 4.1).  In Python the realisation of
"tight compiled loops over raw memory" is a vectorised NumPy kernel per
plan stage: predicates become boolean masks over whole column views,
aggregation becomes ``np.add.at``/``bincount`` over group codes, and
reference navigation becomes index gathers grouped by target block.

Both SMC layouts share this engine through one abstraction — the column
accessor.  Columnar blocks expose real per-field arrays (contiguous, the
fastest case); row blocks expose *strided* views into the slot bytes, so
the row layout pays the cache-unfriendly stride the paper's Figure 12
measures against true columnar storage.  The logical plans, parameters
and results are exactly those of the scalar backends, so all engines stay
interchangeable and cross-checkable (the per-row scalar code generator
remains available as the ``smc-unsafe-scalar`` ablation flavour).

Scaled-decimal arithmetic note: decimal columns hold int64 fixed-point
values; products of two decimals carry the summed scale.  TPC-H's
``price * (1-disc) * (1+tax)`` reaches scale 6 (~1e11 per row), far inside
int64, and per-block partial sums are accumulated in Python ints, which
are unbounded.
"""

from __future__ import annotations

import datetime as _dt
from decimal import Decimal
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import NullReferenceError
from repro.memory import zonemap
from repro.memory.addressing import NULL_ADDRESS
from repro.memory.indirection import INC_MASK
from repro.query.builder import (
    Distinct,
    GroupBy,
    Having,
    OrderBy,
    Query,
    Result,
    Select,
    Take,
    Where,
    WhereIn,
)
from repro.query.compiler import (
    CompileError,
    _field_dtype,
    _to_raw,
    derive_zone_tests,
)
from repro.query.expressions import (
    Between,
    BinOp,
    BoolOp,
    CaseWhen,
    Cmp,
    Const,
    Expr,
    FieldRef,
    InSet,
    Not,
    Param,
    RefIdentity,
    StrContains,
    StrPrefix,
    YearOf,
)
from repro.query import planner as _planner
from repro.query.runtime import scan_blocks
from repro.schema.fields import (
    CharField,
    RefField,
    VarStringField,
    date_to_days,
    days_to_date,
)

_PYOBJ = ("any", None)

_ROW_DTYPES = {
    "DecimalField": np.int64,
    "Int64Field": np.int64,
    "VarStringField": np.int64,
    "DateField": np.int32,
    "Int32Field": np.int32,
    "Int16Field": np.int16,
    "Int8Field": np.int8,
    "BoolField": np.int8,
    "Float64Field": np.float64,
}


def _row_view(block, layout, name: str) -> np.ndarray:
    """Strided NumPy view over one field of a row block's slots."""
    if name.endswith("__w"):
        field = layout.by_name[name[:-3]]
        dtype, off = np.int64, field.offset
    elif name.endswith("__i"):
        field = layout.by_name[name[:-3]]
        dtype, off = np.uint32, field.offset + 8
    else:
        field = layout.by_name[name]
        if isinstance(field, CharField):
            dtype, off = f"S{field.width}", field.offset
        else:
            dtype, off = _ROW_DTYPES[type(field).__name__], field.offset
    return np.ndarray(
        shape=(block.slot_count,),
        dtype=dtype,
        buffer=memoryview(block.buf),
        offset=block.object_offset + off,
        strides=(block.slot_size,),
    )


def _column_of(manager, block, name: str) -> np.ndarray:
    """Column accessor: real arrays for columnar blocks, strided views for
    row blocks (resolved through the block's context layout)."""
    columns = getattr(block, "columns", None)
    if columns is not None:
        return columns[name]
    layout = manager.context_by_id(block.context_id).layout
    return _row_view(block, layout, name)


def build_scan_plan(
    query: Query,
    params: Dict[str, Any],
    prune: bool = True,
    planner: Optional[bool] = None,
) -> Tuple["_ScanPlan", List[Any]]:
    """Lower *query* to a scan plan plus its post-scan operator list.

    The plan is what executors (serial, thread pool, process pool)
    consume; the post ops (order/limit/having/distinct) always run on
    the driver after the merge.  ``planner`` toggles cost-based conjunct
    splitting/ordering and access-path choice (None = process default);
    with the planner off, predicates run in declaration order — the
    ablation baseline.
    """
    source = query.source
    manager = source.manager

    filters: List[Expr] = []
    inset_ops: List[Tuple[WhereIn, Result]] = []
    terminal = None
    post: List[Any] = []
    for op in query.ops:
        if isinstance(op, Where):
            filters.append(op.pred)
        elif isinstance(op, WhereIn):
            # Subqueries are materialised up front on the driver thread;
            # each scan worker probes its own _InsetProbe over the shared
            # (read-only) subquery result.
            sub = op.subquery.run(engine="compiled", params=params)
            inset_ops.append((op, sub))
        elif isinstance(op, (Select, GroupBy)):
            if terminal is not None:
                raise CompileError("only one projection/aggregation allowed")
            terminal = op
        elif isinstance(op, (OrderBy, Take, Having, Distinct)):
            post.append(op)
        else:
            raise CompileError(f"cannot run op {op!r} on the columnar engine")

    # Cost-based filter ordering (repro.query.planner): conjunctions are
    # split and conjuncts ranked cheapest-and-most-selective-first from
    # zone-map / dictionary statistics, so expensive navigating kernels
    # see already-reduced row sets.  With the planner disabled (the
    # ablation) predicates run exactly as declared.
    use_planner = _planner.enabled() if planner is None else bool(planner)
    index_choice = None
    info = None
    if use_planner:
        filters, index_choice, info = _planner.plan_scan(
            query.signature(), filters, params, source, prune=prune
        )

    zone_tests = derive_zone_tests(filters, params, source) if prune else []
    plan = _ScanPlan(
        manager,
        source,
        params,
        filters,
        inset_ops,
        terminal,
        zone_tests,
        index_choice,
        info,
    )
    return plan, post


def run_columnar(
    query: Query,
    params: Dict[str, Any],
    workers: Optional[int] = None,
    prune: bool = True,
    planner: Optional[bool] = None,
) -> Result:
    plan, post = build_scan_plan(query, params, prune=prune, planner=planner)
    manager = plan.manager
    zone_tests = plan.zone_tests
    faults_before = (
        manager.stats.extra.get("tier_faults", 0)
        if manager.pager is not None
        else 0
    )

    nworkers = max(1, int(workers or 1))
    if plan.index_choice is not None:
        # Access-path substitution: the hash index names the candidate
        # rows, only their blocks are touched, every filter re-applies.
        acc, pruned, scanned = _run_index_lookup(plan)
        extra = manager.stats.extra
        extra["index_lookup_queries"] = (
            extra.get("index_lookup_queries", 0) + 1
        )
        extra["index_skipped_blocks"] = (
            extra.get("index_skipped_blocks", 0) + pruned
        )
    elif nworkers > 1:
        # Engine choice: a process pool attached to the manager handles
        # eligible scans (aggregating/projecting terminals); anything it
        # declines — enumeration, a busy pool, a mid-query mutation, a
        # worker failure — falls back to the thread executor, which is
        # always correct.
        result = None
        pool = getattr(manager, "exec_pool", None)
        if pool is not None:
            from repro.query.procexec import run_process_scan

            result = run_process_scan(plan, pool)
        extra = manager.stats.extra
        if result is not None:
            acc, pruned, scanned = result
            extra["exec_process_queries"] = (
                extra.get("exec_process_queries", 0) + 1
            )
        else:
            from repro.query.parallel import run_parallel

            acc, pruned, scanned = run_parallel(plan, nworkers)
            extra["exec_thread_queries"] = (
                extra.get("exec_thread_queries", 0) + 1
            )
    else:
        acc, pruned, scanned = _run_serial(plan)

    extra = manager.stats.extra
    extra["scan_rows"] = extra.get("scan_rows", 0) + acc.rows_scanned
    extra["scan_rows_matched"] = (
        extra.get("scan_rows_matched", 0) + acc.rows_matched
    )
    extra["scan_blocks"] = extra.get("scan_blocks", 0) + scanned
    # Pruning telemetry distinguishes "zone tests ran, nothing prunable"
    # (tested blocks grow, pruned may stay 0) from "no zone test could
    # be derived" (untested blocks grow).
    if zone_tests:
        extra["zone_tested_blocks"] = (
            extra.get("zone_tested_blocks", 0) + scanned + pruned
        )
        extra["zone_pruned_blocks"] = (
            extra.get("zone_pruned_blocks", 0) + pruned
        )
        extra["zone_scanned_blocks"] = (
            extra.get("zone_scanned_blocks", 0) + scanned
        )
    else:
        extra["zone_untested_blocks"] = (
            extra.get("zone_untested_blocks", 0) + scanned
        )
    if manager.pager is not None:
        # Per-query fault count, so benchmarks can assert a fully-pruned
        # scan faulted in zero cold blocks.
        extra["last_scan_tier_faults"] = (
            extra.get("tier_faults", 0) - faults_before
        )
    # Observed per-query selectivity (ppm), for the feedback loop and
    # the metrics bridge.
    if acc.rows_scanned:
        extra["last_scan_selectivity_ppm"] = int(
            1_000_000 * acc.rows_matched / acc.rows_scanned
        )
    if plan.info is not None:
        _planner.record_observation(
            plan.info,
            rows_scanned=acc.rows_scanned,
            rows_matched=acc.rows_matched,
            blocks_scanned=scanned,
            blocks_pruned=pruned,
            block_count=plan.source.context.block_count(),
            workers=nworkers,
        )

    columns, rows = acc.finish(manager)
    for op in post:
        if isinstance(op, OrderBy):
            for name, desc in reversed(op.items):
                i = columns.index(name)
                rows.sort(key=lambda r, i=i: r[i], reverse=desc)
        elif isinstance(op, Take):
            rows = rows[: op.n]
        elif isinstance(op, Having):
            rows = op.apply(columns, rows)
        elif isinstance(op, Distinct):
            rows = Distinct.apply(rows)
    return Result(columns, rows)


class _ScanPlan:
    """Everything a scan worker needs to process one block.

    Shared (read-only) between the serial path and the parallel morsel
    workers; the only per-worker state is the ``_InsetProbe`` list (its
    lazily materialised key sets are not thread-safe) and the partial
    :class:`_Accumulator` each worker folds blocks into.
    """

    __slots__ = (
        "manager",
        "source",
        "params",
        "filters",
        "inset_ops",
        "terminal",
        "zone_tests",
        "index_choice",
        "info",
    )

    def __init__(
        self,
        manager,
        source,
        params,
        filters,
        inset_ops,
        terminal,
        zone_tests,
        index_choice=None,
        info=None,
    ) -> None:
        self.manager = manager
        self.source = source
        self.params = params
        self.filters = filters
        self.inset_ops = inset_ops
        self.terminal = terminal
        self.zone_tests = zone_tests
        #: planner access-path substitution (``planner.IndexChoice``)
        self.index_choice = index_choice
        #: planner estimates (``planner.PlanInfo``) — None with planner off
        self.info = info

    @property
    def morsel_hint(self):
        """Adaptive morsel width from execution feedback (None = default)."""
        return self.info.morsel_hint if self.info is not None else None

    def make_probes(self) -> List["_InsetProbe"]:
        return [_InsetProbe(op, sub) for op, sub in self.inset_ops]

    def make_accumulator(self) -> "_Accumulator":
        return _Accumulator(self.terminal)

    def admits(self, block) -> bool:
        """Zone-map test: may *block* contain rows satisfying the filters?

        Blocks without current statistics (blocks being filled, empty
        blocks, builds raced by a writer) are always admitted — zone
        pruning is strictly an optimisation over the conservative answer.
        The map itself is built lazily here, amortised across scans:
        writers only bump the block's version counter.
        """
        if not self.zone_tests:
            return True
        zones = zonemap.ensure(self.manager, block)
        if zones is None:
            return True
        for test in self.zone_tests:
            if not test.admits_zones(zones):
                return False
        return True

    def process_block(self, block, probes, acc: "_Accumulator") -> None:
        """Run the filter kernels over *block*, folding rows into *acc*."""
        ctx = _BlockCtx(self.manager, self.source, block, self.params)
        if ctx.idx.size == 0:
            return
        acc.rows_scanned += int(ctx.idx.size)
        for pred in self.filters:
            arr, __ = ctx.eval(pred)
            ctx.refine(np.asarray(arr, dtype=bool))
            if ctx.idx.size == 0:
                return
        for probe in probes:
            ctx.refine(probe.mask(ctx))
            if ctx.idx.size == 0:
                return
        acc.rows_matched += int(ctx.idx.size)
        acc.absorb(ctx)


def _run_serial(plan: _ScanPlan) -> Tuple["_Accumulator", int, int]:
    """Single-threaded scan: one critical section over all blocks."""
    manager = plan.manager
    acc = plan.make_accumulator()
    probes = plan.make_probes()
    pager = manager.pager
    pruned = scanned = 0
    manager.epochs.enter_critical_section()
    try:
        for block in scan_blocks(manager, plan.source.context):
            if not plan.admits(block):
                # Pruned blocks are never referenced: a fully-pruned
                # scan over a cold context touches zero cold bytes.
                pruned += 1
                continue
            scanned += 1
            if pager is not None:
                pager.touch(block)
            plan.process_block(block, probes, acc)
    finally:
        manager.epochs.exit_critical_section()
    return acc, pruned, scanned


def _run_index_lookup(plan: _ScanPlan) -> Tuple["_Accumulator", int, int]:
    """Execute *plan* through its hash-index point lookup.

    The index resolves the candidate rows' indirection entries; their
    current addresses group into per-block candidate slot sets, and the
    scan enumerator is then driven normally but only candidate blocks
    build kernels (restricted to the candidate slots, with **all**
    filters re-applied — the index is an access path, not a semantics
    change).  Driving ``scan_blocks`` keeps the compaction-group
    protocol identical to a full scan, and visiting blocks in scan
    order keeps row order identical to the serial scan's.  Like any
    scan, concurrent-mutation visibility follows bag semantics.
    """
    manager = plan.manager
    space = manager.space
    acc = plan.make_accumulator()
    probes = plan.make_probes()
    choice = plan.index_choice
    scanned = 0
    total = 0
    manager.epochs.enter_critical_section()
    try:
        handles = choice.index.get(choice.key)
        table = manager.table
        shift = space.block_shift
        mask = space.block_size - 1
        by_block: Dict[int, List[int]] = {}
        for handle in handles:
            addr = table._addr[handle.ref.entry]
            if addr == NULL_ADDRESS:
                continue
            by_block.setdefault(int(addr) >> shift, []).append(
                int(addr) & mask
            )
        for block in scan_blocks(manager, plan.source.context):
            total += 1
            offsets = by_block.get(block.block_id)
            if offsets is None:
                continue
            scanned += 1
            ctx = _BlockCtx(manager, plan.source, block, plan.params)
            if ctx.idx.size == 0:
                continue
            if hasattr(block, "columns"):
                slots = np.array(sorted(offsets), dtype=np.int64)
            else:
                slots = np.array(
                    sorted(
                        (off - block.object_offset) // block.slot_size
                        for off in offsets
                    ),
                    dtype=np.int64,
                )
            ctx.refine(np.isin(ctx.idx, slots))
            if ctx.idx.size == 0:
                continue
            acc.rows_scanned += int(ctx.idx.size)
            empty = False
            for pred in plan.filters:
                arr, __ = ctx.eval(pred)
                ctx.refine(np.asarray(arr, dtype=bool))
                if ctx.idx.size == 0:
                    empty = True
                    break
            if empty:
                continue
            for probe in probes:
                ctx.refine(probe.mask(ctx))
                if ctx.idx.size == 0:
                    empty = True
                    break
            if empty:
                continue
            acc.rows_matched += int(ctx.idx.size)
            acc.absorb(ctx)
    finally:
        manager.epochs.exit_critical_section()
    return acc, total - scanned, scanned


def _nav_depth(expr: Expr) -> int:
    """Deepest reference navigation inside *expr* (filter-ordering key)."""
    depth = 0
    if isinstance(expr, FieldRef):
        depth = len(expr.steps)
    elif isinstance(expr, RefIdentity):
        depth = len(expr.steps) - 1
    for child in expr.children():
        depth = max(depth, _nav_depth(child))
    return depth


class _InsetProbe:
    """One WhereIn probe with its key set materialised exactly once."""

    def __init__(self, op: WhereIn, sub: Result) -> None:
        self.op = op
        self.sub = sub
        self._keys = None
        self._probe_array = None

    def _materialise(self, specs) -> None:
        rows = self.sub.rows
        if len(specs) == 1 and specs[0][0] in ("int", "ref"):
            # Fast path: plain integer keys need no raw conversion.
            self._keys = {
                (row[0] if isinstance(row, tuple) else row) for row in rows
            }
            return
        keys = set()
        for row in rows:
            values = row if isinstance(row, tuple) else (row,)
            converted = tuple(_raw_key(v, s) for v, s in zip(values, specs))
            keys.add(converted if len(converted) > 1 else converted[0])
        self._keys = keys

    def mask(self, ctx: "_BlockCtx") -> np.ndarray:
        op = self.op
        specs: List[Tuple[str, Any]] = []
        arrays: List[np.ndarray] = []
        for e in op.exprs:
            arr, dtype = ctx.eval(e)
            arrays.append(np.asarray(arr))
            specs.append(dtype)
        if self._keys is None:
            self._materialise(specs)
        keys = self._keys
        if len(arrays) == 1:
            if keys:
                if self._probe_array is None:
                    self._probe_array = np.array(
                        sorted(keys), dtype=arrays[0].dtype
                    )
                mask = np.isin(arrays[0], self._probe_array)
            else:
                mask = np.zeros(ctx.idx.size, dtype=bool)
        else:
            mask = np.fromiter(
                (
                    tuple(a[i] for a in arrays) in keys
                    for i in range(ctx.idx.size)
                ),
                dtype=bool,
                count=ctx.idx.size,
            )
        return ~mask if op.negated else mask


def _raw_key(value, spec):
    """Like :func:`_to_raw` but NUL-padded for NumPy ``S`` columns.

    Columnar char columns are NUL-padded by NumPy, unlike the
    space-padded row-layout CHAR slots; plain bytes keys let ``np.isin``
    apply the correct padding.  Dictionary-coded probe columns translate
    subquery strings to codes (``-2`` for strings absent from the
    dictionary, which no stored code can equal).
    """
    kind, meta = spec
    if kind == "strcode":
        code = meta.code_of(value if isinstance(value, str) else str(value))
        return -2 if code is None else code
    if kind == "str" and isinstance(meta, int) and isinstance(value, str):
        return value.encode("utf-8")
    return _to_raw(value, spec)


# ----------------------------------------------------------------------
# Per-block evaluation context
# ----------------------------------------------------------------------


class _BlockCtx:
    def __init__(self, manager, source, block, params) -> None:
        self.manager = manager
        self.source = source
        self.block = block
        self.params = params
        self.idx = block.valid_slots()
        #: navigation cache: steps tuple -> (address array, version)
        self._addrs: Dict[tuple, Tuple[np.ndarray, int]] = {}
        #: per-address-array block grouping (argsort + slot ids), shared by
        #: every field gathered through the same navigation path
        self._groupings: Dict[tuple, "_AddressGrouping"] = {}
        #: value cache: expr signature -> (array, dtype, version)
        self._vals: Dict[str, Tuple[np.ndarray, Any, int]] = {}
        #: keep masks applied by refine(); cached arrays record the
        #: version (keep count) they are aligned to and catch up lazily
        #: on access, so a predicate value that is never reused costs
        #: nothing when later predicates shrink the candidate set.
        self._keeps: List[np.ndarray] = []

    def refine(self, keep: np.ndarray) -> None:
        self.idx = self.idx[keep]
        self._keeps.append(keep)
        self._groupings.clear()  # groupings index the pre-refine arrays

    def _catch_up(self, arr: np.ndarray, version: int) -> np.ndarray:
        for i in range(version, len(self._keeps)):
            arr = arr[self._keeps[i]]
        return arr

    def _strdict_for(self, field):
        """String dictionary of the collection owning *field*, if any."""
        coll = self.manager.collections.get(field.owner.__name__)
        return getattr(coll, "strdict", None)

    # -- navigation -----------------------------------------------------

    def _grouping(self, key: tuple, addrs: np.ndarray) -> "_AddressGrouping":
        grouping = self._groupings.get(key)
        if grouping is None:
            grouping = _AddressGrouping(self.manager.space, addrs)
            self._groupings[key] = grouping
        return grouping

    def _gather(self, addrs: np.ndarray, getter, key: tuple = None) -> np.ndarray:
        """Fetch per-object data across target blocks by address."""
        if key is None:
            key = ("adhoc", id(addrs))
        return self._grouping(key, addrs).fetch(self.manager, getter)

    def addresses(self, steps: Tuple[RefField, ...]) -> Optional[np.ndarray]:
        """Target addresses after navigating *steps* (None = base block)."""
        if not steps:
            return None
        cached = self._addrs.get(steps)
        if cached is not None:
            arr, version = cached
            if version != len(self._keeps):
                arr = self._catch_up(arr, version)
                self._addrs[steps] = (arr, len(self._keeps))
            return arr
        parent = self.addresses(steps[:-1])
        field = steps[-1]
        manager = self.manager
        if parent is None:
            w = _column_of(manager, self.block, field.name + "__w")[
                self.idx
            ].astype(np.int64)
            inc = _column_of(manager, self.block, field.name + "__i")[self.idx]
        else:
            w = self._gather(
                parent,
                lambda b: _column_of(manager, b, field.name + "__w"),
                key=steps[:-1],
            )
            inc = self._gather(
                parent,
                lambda b: _column_of(manager, b, field.name + "__i"),
                key=steps[:-1],
            )
        if np.any(w == NULL_ADDRESS):
            raise NullReferenceError(
                f"null reference navigating {field.name} (columnar engine "
                f"requires non-null paths)"
            )
        table = self.manager.table
        if self.manager.direct_pointers:
            addrs = w
            live = self._gather(addrs, lambda b: b.slot_incs, key=steps) & INC_MASK
            if not np.array_equal(live, inc & INC_MASK):
                raise NullReferenceError("direct pointer incarnation mismatch")
        else:
            entry_inc = table._inc[w] & INC_MASK
            if not np.array_equal(entry_inc, inc & INC_MASK):
                raise NullReferenceError("reference incarnation mismatch")
            addrs = table._addr[w]
        self._addrs[steps] = (addrs, len(self._keeps))
        return addrs

    def column(self, steps: Tuple[RefField, ...], name: str) -> np.ndarray:
        addrs = self.addresses(steps)
        if addrs is None:
            return _column_of(self.manager, self.block, name)[self.idx]
        manager = self.manager
        return self._gather(
            addrs, lambda b: _column_of(manager, b, name), key=steps
        )

    # -- expression evaluation ---------------------------------------------

    def eval(self, expr: Expr) -> Tuple[Any, Tuple[str, Any]]:
        sig = expr.signature()
        cached = self._vals.get(sig)
        if cached is not None:
            value, dtype, version = cached
            if version != len(self._keeps):
                value = self._catch_up(value, version)
                self._vals[sig] = (value, dtype, len(self._keeps))
            return value, dtype
        value, dtype = self._eval(expr)
        if isinstance(value, np.ndarray):
            self._vals[sig] = (value, dtype, len(self._keeps))
        return value, dtype

    def _eval(self, expr: Expr) -> Tuple[Any, Tuple[str, Any]]:
        if isinstance(expr, Const):
            return self._const(expr.value)
        if isinstance(expr, Param):
            return self._const(self.params[expr.name])
        if isinstance(expr, FieldRef):
            field = expr.field
            if isinstance(field, RefField):
                arr = self.column(expr.steps, field.name + "__w")
                return np.asarray(arr, dtype=np.int64), ("ref", None)
            if isinstance(field, VarStringField):
                raw = np.asarray(self.column(expr.steps, field.name))
                sd = self._strdict_for(field)
                if sd is not None:
                    # Dictionary codes: row templates store NULL_ADDRESS
                    # (-1) for unset strings; fold to code 0 ("").
                    codes = raw.astype(np.int64, copy=False)
                    if codes.size and int(codes.min()) < 0:
                        codes = np.maximum(codes, 0)
                    return codes, ("strcode", sd)
                # Ablation path: batch-decode the block's records into one
                # NumPy bytes array so string kernels stay vectorised.
                strings = self.manager.strings
                texts = [strings.read_bytes(int(a)) for a in raw]
                width = max(map(len, texts), default=1) or 1
                return np.array(texts, dtype=f"S{width}"), ("str", -width)
            return np.asarray(self.column(expr.steps, field.name)), _field_dtype(
                field
            )
        if isinstance(expr, RefIdentity):
            arr = self.column(expr.steps[:-1], expr.steps[-1].name + "__w")
            return np.asarray(arr, dtype=np.int64), ("ref", None)
        if isinstance(expr, BinOp):
            (l, ldt) = self.eval(expr.left)
            (r, rdt) = self.eval(expr.right)
            l, r, dtype = _align(l, ldt, r, rdt, expr.op)
            if expr.op == "+":
                return l + r, dtype
            if expr.op == "-":
                return l - r, dtype
            if expr.op == "*":
                return l * r, dtype
            return l / r, dtype
        if isinstance(expr, Cmp):
            (l, ldt) = self.eval(expr.left)
            (r, rdt) = self.eval(expr.right)
            if ldt[0] == "strcode" or rdt[0] == "strcode":
                return self._cmp_strcode(expr.op, l, ldt, r, rdt)
            l, r, __ = _align(l, ldt, r, rdt, "cmp")
            ops = {
                "==": np.equal,
                "!=": np.not_equal,
                "<": np.less,
                "<=": np.less_equal,
                ">": np.greater,
                ">=": np.greater_equal,
            }
            return ops[expr.op](l, r), ("bool", None)
        if isinstance(expr, BoolOp):
            result = None
            for part in expr.parts:
                arr, __ = self.eval(part)
                arr = np.asarray(arr, dtype=bool)
                if result is None:
                    result = arr
                elif expr.op == "and":
                    result = result & arr
                else:
                    result = result | arr
            return result, ("bool", None)
        if isinstance(expr, Not):
            arr, __ = self.eval(expr.inner)
            return ~np.asarray(arr, dtype=bool), ("bool", None)
        if isinstance(expr, Between):
            v, vdt = self.eval(expr.inner)
            if vdt[0] == "strcode":
                v, vdt = vdt[1].decode_array(np.asarray(v)), ("str", "py")
            lo, ldt = self.eval(expr.lo)
            hi, hdt = self.eval(expr.hi)
            lo2, v1, __ = _align(lo, ldt, v, vdt, "cmp")
            hi2, v2, __ = _align(hi, hdt, v, vdt, "cmp")
            return (v1 >= lo2) & (v2 <= hi2), ("bool", None)
        if isinstance(expr, InSet):
            arr, dtype = self.eval(expr.inner)
            if dtype[0] == "strcode":
                codes = dtype[1].match_codes(
                    "inset", frozenset(str(v) for v in expr.values)
                )
                return np.isin(arr, codes), ("bool", None)
            raw = [_to_raw(v, dtype) for v in expr.values]
            if dtype[0] == "str" and isinstance(dtype[1], int) and dtype[1] > 0:
                # SQL CHAR comparison ignores trailing spaces; strip the
                # padding from *both* sides (probes carry NUL padding from
                # _to_raw, the column carries whatever was stored).
                raw = [v.rstrip(b" \x00") for v in raw]
                arr = np.char.rstrip(arr, b" \x00")
            probe = np.array(raw)
            return np.isin(arr, probe), ("bool", None)
        if isinstance(expr, CaseWhen):
            cond, __ = self.eval(expr.cond)
            then, tdt = self.eval(expr.then)
            other, odt = self.eval(expr.otherwise)
            if tdt[0] == "strcode":
                then, tdt = tdt[1].decode_array(np.asarray(then)), ("str", "py")
            if odt[0] == "strcode":
                other, odt = odt[1].decode_array(np.asarray(other)), ("str", "py")
            then, other, dtype = _align(then, tdt, other, odt, "+")
            return (
                np.where(np.asarray(cond, dtype=bool), then, other),
                dtype,
            )
        if isinstance(expr, YearOf):
            arr, __ = self.eval(expr.inner)
            days = np.asarray(arr, dtype="datetime64[D]")
            years = days.astype("datetime64[Y]").astype(np.int64) + 1970
            return years, ("int", None)
        if isinstance(expr, StrPrefix):
            arr, dtype = self.eval(expr.inner)
            if dtype[0] == "strcode":
                # Evaluated once over the dictionary's distinct values,
                # then reduced to an int-code membership test.
                codes = dtype[1].match_codes("prefix", expr.prefix)
                return np.isin(arr, codes), ("bool", None)
            if isinstance(dtype[1], int):
                return (
                    np.char.startswith(arr, expr.prefix.encode()),
                    ("bool", None),
                )
            return (
                np.array([s.startswith(expr.prefix) for s in arr], dtype=bool),
                ("bool", None),
            )
        if isinstance(expr, StrContains):
            arr, dtype = self.eval(expr.inner)
            if dtype[0] == "strcode":
                codes = dtype[1].match_codes("contains", expr.needle)
                return np.isin(arr, codes), ("bool", None)
            if isinstance(dtype[1], int):
                return np.char.find(arr, expr.needle.encode()) >= 0, ("bool", None)
            return (
                np.array([expr.needle in s for s in arr], dtype=bool),
                ("bool", None),
            )
        raise CompileError(f"cannot evaluate {expr!r} on the columnar engine")

    _CMP_OPS = {
        "==": np.equal,
        "!=": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }

    def _cmp_strcode(self, op, l, ldt, r, rdt):
        """Comparison with at least one dictionary-coded operand.

        Equality against a literal is a single ``code_of`` lookup followed
        by an integer compare; ordering comparisons fall back to decoded
        text (codes are allocation-ordered, not collation-ordered).
        """
        if ldt[0] != "strcode":
            l, ldt, r, rdt = r, rdt, l, ldt
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        sd = ldt[1]
        if rdt[0] == "strcode":
            if rdt[1] is sd and op in ("==", "!="):
                return self._CMP_OPS[op](l, r), ("bool", None)
            lv = sd.decode_array(np.asarray(l))
            rv = rdt[1].decode_array(np.asarray(r))
            return self._CMP_OPS[op](lv, rv), ("bool", None)
        rv = r.decode("utf-8") if isinstance(r, bytes) else str(r)
        if op in ("==", "!="):
            code = sd.code_of(rv)
            if code is None:
                # The literal is not in the dictionary: nothing matches.
                empty = np.zeros(np.asarray(l).shape, dtype=bool)
                return (empty if op == "==" else ~empty), ("bool", None)
            return self._CMP_OPS[op](l, code), ("bool", None)
        texts = sd.decode_array(np.asarray(l))
        return self._CMP_OPS[op](texts, rv), ("bool", None)

    def _const(self, value: Any) -> Tuple[Any, Tuple[str, Any]]:
        if isinstance(value, Decimal):
            scale = max(0, -value.as_tuple().exponent)
            return int(value.scaleb(scale).to_integral_value()), ("decimal", scale)
        if isinstance(value, _dt.date):
            return date_to_days(value), ("date", None)
        if isinstance(value, str):
            return value.encode("utf-8"), ("str", "py-bytes")
        if isinstance(value, float):
            return value, ("float", None)
        return value, ("int", None)


def _align(l, ldt, r, rdt, op):
    """Scaled-decimal / string alignment for vectorised operands."""
    lk, lm = ldt
    rk, rm = rdt
    if lk == "decimal" or rk == "decimal":
        if op == "*":
            scale = (lm if lk == "decimal" else 0) + (
                rm if rk == "decimal" else 0
            )
            return l, r, ("decimal", scale)
        if op == "/":
            lf = l / 10 ** lm if lk == "decimal" else l
            rf = r / 10 ** rm if rk == "decimal" else r
            return lf, rf, ("float", None)
        ls = lm if lk == "decimal" else 0
        rs = rm if rk == "decimal" else 0
        scale = max(ls, rs)
        if ls < scale:
            l = l * 10 ** (scale - ls)
        if rs < scale:
            r = r * 10 ** (scale - rs)
        return l, r, ("decimal", scale)
    if lk == "str" or rk == "str":
        # NumPy S-columns compare against plain byte literals directly.
        return l, r, ldt if lk == "str" else rdt
    if lk == "float" or rk == "float":
        return l, r, ("float", None)
    return l, r, ldt


class _AddressGrouping:
    """Sorted block grouping of an address array, reused across gathers.

    Grouping costs one argsort; each subsequent field fetched through the
    same navigation path reuses the per-block slot indices, making a
    k-field navigation O(n log n + k·n) instead of O(k·#blocks·n).
    """

    __slots__ = ("order", "runs")

    def __init__(self, space, addrs: np.ndarray) -> None:
        shift = space.block_shift
        mask = space.block_size - 1
        bids = addrs >> shift
        offsets = addrs & mask
        self.order = np.argsort(bids, kind="stable")
        sorted_bids = bids[self.order]
        sorted_offsets = offsets[self.order]
        uniq, starts = np.unique(sorted_bids, return_index=True)
        bounds = np.append(starts, len(addrs))
        self.runs = []
        for i, bid in enumerate(uniq.tolist()):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            blk = space.block_by_id(int(bid))
            offs = sorted_offsets[lo:hi]
            if hasattr(blk, "columns"):
                idxs = offs  # columnar: offset part IS the slot id
            else:
                idxs = (offs - blk.object_offset) // blk.slot_size
            self.runs.append((blk, lo, hi, idxs))

    def fetch(self, manager, getter) -> np.ndarray:
        out = None
        order = self.order
        for blk, lo, hi, idxs in self.runs:
            col = getter(blk)
            if out is None:
                out = np.empty(len(order), dtype=col.dtype)
            out[order[lo:hi]] = col[idxs]
        if out is None:
            out = np.empty(0, dtype=np.int64)
        return out


# ----------------------------------------------------------------------
# Accumulation across blocks
# ----------------------------------------------------------------------


def _concat(chunks: List[np.ndarray]) -> np.ndarray:
    return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)


def _group_factorize(cols: List[np.ndarray]) -> Tuple[List[tuple], np.ndarray]:
    """``(uniq_keys, inverse)`` lexicographic grouping of key columns.

    A single column factorizes directly.  Multiple columns factorize
    independently and combine their per-column ranks into one integer
    key space (cardinalities multiply), which groups with cheap int64
    sorts instead of a structured-dtype sort; only a (pathological)
    combined space that could overflow int64 falls back to the record
    sort.
    """
    if len(cols) == 1:
        uniq, inverse = np.unique(cols[0], return_inverse=True)
        return [(k,) for k in uniq.tolist()], inverse
    uniqs, invs, sizes = [], [], []
    span = 1
    for col in cols:
        u, inv = np.unique(col, return_inverse=True)
        uniqs.append(u)
        invs.append(inv.astype(np.int64, copy=False))
        sizes.append(max(1, len(u)))
        span *= max(1, len(u))
    if span < 2 ** 62:
        codes = invs[0]
        for inv, size in zip(invs[1:], sizes[1:]):
            codes = codes * size + inv
        ucodes, inverse = np.unique(codes, return_inverse=True)
        parts = []
        rem = ucodes
        for size in reversed(sizes[1:]):
            parts.append(rem % size)
            rem = rem // size
        parts.append(rem)
        parts.reverse()
        columns = [uniqs[j][parts[j]].tolist() for j in range(len(cols))]
        return list(zip(*columns)), inverse
    rec = np.rec.fromarrays(cols)
    uniq, inverse = np.unique(rec, return_inverse=True)
    return [tuple(u) for u in uniq.tolist()], inverse


def _grouped_sums(
    chunks: List[np.ndarray], inverse: np.ndarray, nuniq: int
) -> np.ndarray:
    """Per-group sums folded chunk by chunk (chunk = one scanned block).

    Dense-group-code scatter: ``np.add.at`` is an unbuffered (hence
    slow) scatter; bincount-with-weights is the vectorised fast path.
    Weights accumulate in float64, exact only below 2**53, so each
    chunk guards on its worst-case partial-sum magnitude.  Chunks fold
    in scan order, so float sums reproduce the serial per-block
    addition order bit for bit.
    """
    total = None
    pos = 0
    for arr in chunks:
        inv = inverse[pos : pos + arr.size]
        pos += arr.size
        if arr.dtype.kind in "iu":
            amax = (
                max(abs(int(arr.min())), abs(int(arr.max())))
                if arr.size
                else 0
            )
            if arr.size * max(amax, 1) < 2 ** 53:
                part = np.bincount(
                    inv, weights=arr, minlength=nuniq
                ).astype(np.int64)
            else:
                part = np.zeros(nuniq, dtype=np.int64)
                np.add.at(part, inv, arr)
        else:
            part = np.bincount(inv, weights=arr, minlength=nuniq)
        total = part if total is None else total + part
    if total is None:
        return np.zeros(nuniq, dtype=np.int64)
    return total


class _Accumulator:
    def __init__(self, terminal) -> None:
        self.terminal = terminal
        self.rows: List[tuple] = []
        self.groups: Dict[Any, list] = {}
        self.key_dtypes: Optional[List[Tuple[str, Any]]] = None
        self.agg_dtypes: Optional[List[Tuple[str, Any]]] = None
        #: Deferred group-by input: per-block ``(n, key_arrays,
        #: agg_arrays)`` vectors, folded once by :meth:`_collapse`.
        self._pending: List[Tuple[int, list, list]] = []
        #: Valid rows examined before filtering (scan-volume telemetry).
        self.rows_scanned = 0
        #: Rows surviving every filter/probe (observed selectivity).
        self.rows_matched = 0

    def absorb(self, ctx: _BlockCtx) -> None:
        terminal = self.terminal
        if terminal is None:
            self._absorb_enumeration(ctx)
        elif isinstance(terminal, Select):
            self._absorb_select(ctx)
        else:
            self._absorb_groupby(ctx)

    def _absorb_enumeration(self, ctx: _BlockCtx) -> None:
        from repro.memory.reference import Ref

        table = ctx.manager.table
        for entry in ctx.block.backptrs[ctx.idx]:
            entry = int(entry)
            self.rows.append(Ref(ctx.manager, entry, table.incarnation(entry)))

    def _absorb_select(self, ctx: _BlockCtx) -> None:
        n = ctx.idx.size
        columns = []
        for __, e in self.terminal.outputs:
            arr, dtype = ctx.eval(e)
            columns.append(_decode_column(arr, dtype, n))
        self.rows.extend(zip(*columns))

    def _absorb_groupby(self, ctx: _BlockCtx) -> None:
        """Defer a block's group-by input: evaluate and append, don't fold.

        Per-block grouping used to pay a unique + a Python merge per
        (block x group); instead the key/aggregate vectors are stashed
        and :meth:`_collapse` factorizes and folds the whole scan's
        output once, vectorised end to end.
        """
        op: GroupBy = self.terminal
        n = ctx.idx.size
        key_arrays = []
        key_dtypes = []
        for __, e in op.keys:
            arr, dtype = ctx.eval(e)
            arr = np.asarray(arr)
            if arr.ndim == 0:  # constant key: broadcast to the row count
                arr = np.full(n, arr[()])
            key_arrays.append(arr)
            key_dtypes.append(dtype)
        self.key_dtypes = key_dtypes
        agg_arrays: List[Optional[np.ndarray]] = []
        agg_dtypes = []
        for __, agg in op.aggs:
            if agg.kind == "count":
                agg_dtypes.append(("int", None))
                agg_arrays.append(None)
                continue
            arr, dtype = ctx.eval(agg.expr)
            arr = np.asarray(arr)
            if dtype[0] == "strcode":
                if agg.kind in ("sum", "avg"):
                    raise CompileError(f"cannot {agg.kind} a string field")
                # min/max order by text, not by allocation-ordered code.
                arr = dtype[1].decode_array(arr)
                dtype = ("str", "py")
            if arr.ndim == 0:
                arr = np.full(n, arr[()])
            agg_dtypes.append(dtype)
            agg_arrays.append(arr)
        self.agg_dtypes = agg_dtypes
        if n:  # empty blocks set dtypes but contribute no groups
            self._pending.append((n, key_arrays, agg_arrays))

    def _collapse(self) -> None:
        """Fold the deferred group-by vectors into the ``groups`` dict.

        Runs once per accumulator (at finish, merge or wire encoding):
        one key factorization plus one vectorised fold per aggregate
        over the concatenated scan output.  Sums fold chunk by chunk in
        block order, reproducing exactly the partial-sum addition order
        (and the float64/int64 exactness guard) of the former per-block
        path.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        op: GroupBy = self.terminal
        total = sum(p[0] for p in pending)
        nkeys = len(op.keys)
        if nkeys:
            cols = [
                _concat([p[1][i] for p in pending]) for i in range(nkeys)
            ]
            uniq_keys, inverse = _group_factorize(cols)
        else:
            uniq_keys = [()]
            inverse = np.zeros(total, dtype=np.int64)
        nuniq = len(uniq_keys)
        counts = np.bincount(inverse, minlength=nuniq)
        count_list = counts.tolist()
        cells_per_agg: List[list] = []
        for i, (__, agg) in enumerate(op.aggs):
            kind = agg.kind
            if kind == "count":
                cells_per_agg.append(count_list)
                continue
            chunks = [p[2][i] for p in pending]
            if kind in ("sum", "avg"):
                sums = _grouped_sums(chunks, inverse, nuniq).tolist()
                if kind == "sum":
                    cells_per_agg.append(sums)
                else:
                    cells_per_agg.append(
                        [[s, c] for s, c in zip(sums, count_list)]
                    )
                continue
            arr = _concat(chunks)
            if arr.dtype.kind in "iuf":
                if kind == "min":
                    fill = (
                        np.iinfo(arr.dtype).max
                        if arr.dtype.kind in "iu"
                        else np.inf
                    )
                    out = np.full(nuniq, fill, dtype=arr.dtype)
                    np.minimum.at(out, inverse, arr)
                else:
                    fill = (
                        np.iinfo(arr.dtype).min
                        if arr.dtype.kind in "iu"
                        else -np.inf
                    )
                    out = np.full(nuniq, fill, dtype=arr.dtype)
                    np.maximum.at(out, inverse, arr)
                cells_per_agg.append(out.tolist())
            else:
                # Strings (object or bytes): per-group Python fold.
                cells: List[Any] = [None] * nuniq
                lt = kind == "min"
                for g, v in zip(inverse.tolist(), arr.tolist()):
                    cur = cells[g]
                    if cur is None or (v < cur if lt else v > cur):
                        cells[g] = v
                cells_per_agg.append(cells)
        groups = self.groups
        kinds = [agg.kind for __, agg in op.aggs]
        if not groups:
            for g, key in enumerate(uniq_keys):
                groups[key] = [
                    self._init_cell(kinds[i], cells_per_agg[i][g])
                    for i in range(len(kinds))
                ]
            return
        # Rare path: deferred vectors folding into groups that already
        # hold merged-in (wire-decoded) partials.
        for g, key in enumerate(uniq_keys):
            acc = groups.get(key)
            if acc is None:
                groups[key] = [
                    self._init_cell(kinds[i], cells_per_agg[i][g])
                    for i in range(len(kinds))
                ]
            else:
                for i, kind in enumerate(kinds):
                    self._merge_cell(acc, i, kind, cells_per_agg[i][g])

    @staticmethod
    def _init_cell(kind: str, value):
        if kind == "avg":
            return list(value)  # [total, count], mutable running pair
        return value  # count / sum / min / max

    def merge(self, other: "_Accumulator") -> None:
        """Fold another partial accumulator into this one (barrier merge).

        The parallel executor gives every morsel its own accumulator and
        merges them in block order, so rows concatenate and group cells
        combine exactly as the serial scan would have produced them.
        """
        self.rows.extend(other.rows)
        self.rows_scanned += other.rows_scanned
        self.rows_matched += other.rows_matched
        if other.key_dtypes is not None:
            self.key_dtypes = other.key_dtypes
            self.agg_dtypes = other.agg_dtypes
        # Deferred group-by vectors concatenate in merge order, so the
        # final collapse folds them exactly as one serial scan would.
        self._pending.extend(other._pending)
        other._pending = []
        if not other.groups:
            return
        kinds = [agg.kind for __, agg in self.terminal.aggs]
        for key, cells in other.groups.items():
            mine = self.groups.get(key)
            if mine is None:
                self.groups[key] = cells
                continue
            for i, kind in enumerate(kinds):
                if kind in ("sum", "count"):
                    mine[i] += cells[i]
                elif kind == "avg":
                    mine[i][0] += cells[i][0]
                    mine[i][1] += cells[i][1]
                elif kind == "min":
                    if cells[i] < mine[i]:
                        mine[i] = cells[i]
                else:  # max
                    if cells[i] > mine[i]:
                        mine[i] = cells[i]

    @staticmethod
    def _merge_cell(acc: list, i: int, kind: str, value) -> None:
        if kind in ("sum", "count"):
            acc[i] += value
        elif kind == "avg":
            acc[i][0] += value[0]
            acc[i][1] += value[1]
        elif kind == "min":
            acc[i] = value if acc[i] is None else min(acc[i], value)
        elif kind == "max":
            acc[i] = value if acc[i] is None else max(acc[i], value)

    def finish(self, manager) -> Tuple[List[str], List[tuple]]:
        terminal = self.terminal
        if terminal is None:
            return ["*"], self.rows
        if isinstance(terminal, Select):
            return [name for name, __ in terminal.outputs], self.rows
        op: GroupBy = terminal
        self._collapse()
        columns = [n for n, __ in op.keys] + [n for n, __ in op.aggs]
        rows: List[tuple] = []
        if self.key_dtypes is None:
            return columns, rows
        for key, acc in self.groups.items():
            parts = [
                _decode(k, d) for k, d in zip(key, self.key_dtypes)
            ]
            for i, (__, agg) in enumerate(op.aggs):
                dtype = self.agg_dtypes[i]
                if agg.kind == "count":
                    parts.append(acc[i])
                elif agg.kind == "avg":
                    total, count = acc[i]
                    if not count:
                        parts.append(None)
                    elif dtype[0] == "decimal":
                        parts.append(
                            (Decimal(int(total)) / count).scaleb(-dtype[1])
                        )
                    else:
                        parts.append(total / count)
                else:
                    parts.append(_decode(acc[i], dtype))
            rows.append(tuple(parts))
        return columns, rows


def _decode_column(arr, dtype: Tuple[str, Any], n: int) -> List[Any]:
    """Decode a whole output column to Python values (vectorised paths
    for the common types; scalar broadcast for constants)."""
    if not isinstance(arr, np.ndarray):
        return [_decode(arr, dtype)] * n
    kind, meta = dtype
    if kind == "strcode":
        return meta.decode_array(arr).tolist()
    if kind == "decimal":
        quantum = Decimal(1).scaleb(-meta)
        return [Decimal(v) * quantum for v in arr.tolist()]
    if kind == "date":
        return [days_to_date(v) for v in arr.tolist()]
    if kind == "str" and isinstance(meta, int):
        if meta < 0:
            # Batch-decoded varstring bytes: trailing spaces are data;
            # only the S-dtype NUL padding is insignificant.
            return [v.rstrip(b"\x00").decode("utf-8") for v in arr.tolist()]
        return [v.rstrip(b" \x00").decode("utf-8") for v in arr.tolist()]
    if kind == "str":
        return [
            v.rstrip(b" \x00").decode("utf-8") if isinstance(v, bytes) else v
            for v in arr.tolist()
        ]
    return arr.tolist()


def _decode(value: Any, dtype: Tuple[str, Any]) -> Any:
    kind, meta = dtype
    if isinstance(value, np.generic):
        value = value.item()
    if kind == "strcode":
        return meta.text_of(int(value))
    if kind == "decimal":
        return Decimal(int(value)).scaleb(-meta)
    if kind == "date":
        return days_to_date(int(value))
    if kind == "str" and isinstance(meta, int):
        if isinstance(value, bytes):
            pad = b"\x00" if meta < 0 else b" \x00"
            return value.rstrip(pad).decode("utf-8")
        return value
    if kind == "str" and isinstance(value, bytes):
        return value.rstrip(b" \x00").decode("utf-8")
    return value
