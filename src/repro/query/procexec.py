"""Multi-process scatter-gather execution over shared-memory block pools.

Thread-level morsel parallelism (:mod:`repro.query.parallel`) is bounded
by the GIL wherever a kernel is not pure NumPy.  This module adds the
other half of the paper's "scalable query-dominated collections" story: a
pool of **forked worker processes** that attach the same shared-memory
block segments (``MemoryManager(shm=True)``), evaluate the compiled scan
plan locally, and stream partial accumulators back to the parent, which
folds them in block order so results stay byte-identical to the serial
scan at any worker count.

Protocol overview (full write-up in ``docs/parallel_execution.md``):

* **Fork + attach.**  Workers are forked from the owning process, so
  every block mapped *before* the fork is readable through inherited
  mappings of the shared segments (live bytes, not copies).  Blocks
  mapped *after* the fork are resolved through the per-query *space
  map* — ``{block_id: (segment_name, kind)}`` — via the address space's
  ``attach_miss`` hook: the worker attaches the named segment, rebuilds
  the NumPy views read-only from the self-describing block header, and
  adopts the block under its parent-dictated id.

* **Cross-process epochs.**  Each worker publishes a reader section —
  ``(flag, epoch, pid, qid)`` int64 rows in a shared slot segment —
  registered with the parent's :class:`~repro.memory.epoch.EpochManager`
  as an external source, so reclamation and compaction can never unmap
  or reuse a segment while an attached worker pins an older epoch.  The
  parent additionally holds the driver critical section for the whole
  fan-out and one :class:`~repro.memory.epoch.EpochLease` per worker; a
  worker that dies mid-query has its lease revoked and slot cleared by
  the dispatch loop, so a dead reader can never wedge the epoch.

* **Consistency fingerprint.**  Workers see a copy-on-write snapshot of
  all *Python-level* state (indirection table, string dictionaries,
  block lists) as of the fork.  A coarse mutation fingerprint —
  allocations, frees, context count, dictionary versions, string-heap
  blocks — is checked at query start (mismatch: respawn the workers,
  cheap via fork) and at query end (mismatch: discard the partials and
  fall back to the thread executor).  Compaction deliberately does not
  perturb the fingerprint: relocated blocks arrive through the attach
  protocol and the parent's critical section keeps every dispatched
  block mapped, so scans under compaction churn remain exact.

* **Scatter-gather.**  The parent drives the same
  :class:`~repro.query.parallel.MorselDispatcher` the thread executor
  uses, prunes with its authoritative zone maps, stripes the admitted
  block morsels round-robin across workers, and processes compaction
  groups itself (group resolution pins pre-states, which is inherently
  parent-side work).  Partials merge in sequence order; units lost to a
  dead worker are re-executed by the parent and counted as
  ``exec_morsels_redispatched``.

Any worker error, death-induced inconsistency or end-fingerprint
mismatch makes :func:`run_process_scan` return ``None``; the caller
falls back to the thread executor, so the process path is strictly an
optimisation and never a correctness risk.
"""

from __future__ import annotations

import atexit
import os
import pickle
import select
import signal
import struct
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memory import slots as slotcodec
from repro.memory.block import BLOCK_HEADER_SIZE, _HEADER_STRUCT
from repro.memory.slots import VALID
from repro.query import plansnap
from repro.query.parallel import MORSELS_PER_WORKER, MorselDispatcher
from repro.query.runtime import GROUP_DEFERRED, GROUP_PINNED, resolve_group
from repro.sanitizer import hooks as _san

_LEN = struct.Struct("<I")

#: int64 words per worker row in the shared slot segment:
#: ``flag, epoch, pid, qid``.
_SLOT_ROW = 4

#: Segment kinds in the space map shipped with every query.
_KIND_ROW = "r"
_KIND_COLUMNAR = "c"
_KIND_STRING = "s"


# ----------------------------------------------------------------------
# Frame I/O (length-prefixed pickles over raw pipes)
# ----------------------------------------------------------------------


def _send_frame(fd: int, obj) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    view = memoryview(_LEN.pack(len(data)) + data)
    while view:
        n = os.write(fd, view)
        view = view[n:]


def _recv_exact(fd: int, n: int) -> Optional[bytes]:
    chunks = []
    while n:
        chunk = os.read(fd, n)
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_frame(fd: int):
    header = _recv_exact(fd, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    payload = _recv_exact(fd, length)
    if payload is None:
        return None
    return pickle.loads(payload)


def _parse_frames(rec: dict) -> List[tuple]:
    """Drain complete frames out of a worker record's read buffer."""
    buf = rec["buf"]
    frames = []
    while len(buf) >= _LEN.size:
        (length,) = _LEN.unpack_from(buf, 0)
        if len(buf) < _LEN.size + length:
            break
        frames.append(pickle.loads(buf[_LEN.size : _LEN.size + length]))
        buf = buf[_LEN.size + length :]
    rec["buf"] = buf
    return frames


# ----------------------------------------------------------------------
# Worker-side block attach (segment name -> read-only views)
# ----------------------------------------------------------------------


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class _AttachedRowBlock:
    """Read-only stand-in for a row block mapped after the fork.

    Rebuilt purely from the self-describing block header plus the
    context's layout, exactly mirroring ``Block``'s offset recipe.  No
    ``columns`` attribute on purpose: the gather kernels distinguish
    layouts with ``hasattr(block, "columns")``.
    """

    __slots__ = (
        "space",
        "block_id",
        "base_address",
        "segment",
        "buf",
        "type_id",
        "context_id",
        "slot_size",
        "slot_count",
        "object_offset",
        "directory",
        "backptrs",
        "slot_incs",
        "compaction_group",
    )

    def __init__(self, space, block_id: int, segment) -> None:
        self.space = space
        self.block_id = block_id
        self.base_address = space.address_of(block_id)
        self.segment = segment
        self.buf = segment.buf
        type_id, context_id, n, slot_size, __ = _HEADER_STRUCT.unpack_from(
            self.buf, 0
        )
        self.type_id = type_id
        self.context_id = context_id
        self.slot_size = slot_size
        self.slot_count = n
        self.object_offset = BLOCK_HEADER_SIZE
        # The header stores the final slot count (after any alignment
        # sacrifice), so the segment offsets recompute deterministically.
        dir_offset = BLOCK_HEADER_SIZE + n * slot_size
        bp_offset = dir_offset + n * 4
        if bp_offset % 8 != 0:
            bp_offset += 8 - (bp_offset % 8)
        mv = memoryview(self.buf)
        self.directory = _readonly(
            np.frombuffer(mv, dtype=np.uint32, count=n, offset=dir_offset)
        )
        self.backptrs = _readonly(
            np.frombuffer(mv, dtype=np.int64, count=n, offset=bp_offset)
        )
        self.slot_incs = _readonly(
            np.ndarray(
                shape=(n,),
                dtype=np.uint32,
                buffer=mv,
                offset=self.object_offset,
                strides=(slot_size,),
            )
        )
        self.compaction_group = None

    def valid_slots(self) -> np.ndarray:
        return np.nonzero((self.directory & slotcodec.STATE_MASK) == VALID)[0]

    def slot_of_address(self, address: int) -> int:
        return (
            self.space.offset_of(address) - self.object_offset
        ) // self.slot_size


class _AttachedColumnarBlock:
    """Read-only stand-in for a columnar block mapped after the fork."""

    __slots__ = (
        "space",
        "block_id",
        "base_address",
        "segment",
        "buf",
        "type_id",
        "context_id",
        "slot_size",
        "slot_count",
        "columns",
        "directory",
        "backptrs",
        "slot_incs",
        "compaction_group",
    )

    def __init__(self, space, block_id: int, segment, manager) -> None:
        from repro.core.columnar import columnar_offsets

        self.space = space
        self.block_id = block_id
        self.base_address = space.address_of(block_id)
        self.segment = segment
        self.buf = segment.buf
        type_id, context_id, n, slot_size, __ = _HEADER_STRUCT.unpack_from(
            self.buf, 0
        )
        self.type_id = type_id
        self.context_id = context_id
        self.slot_size = slot_size
        self.slot_count = n
        context = manager.context_by_id(context_id)
        cols, dir_off, bp_off, inc_off, __ = columnar_offsets(
            context.layout, context.dict_fields, n
        )
        mv = memoryview(self.buf)
        self.columns = {
            name: _readonly(np.frombuffer(mv, dtype=dt, count=n, offset=off))
            for name, dt, off in cols
        }
        self.directory = _readonly(
            np.frombuffer(mv, dtype=np.uint32, count=n, offset=dir_off)
        )
        self.backptrs = _readonly(
            np.frombuffer(mv, dtype=np.int64, count=n, offset=bp_off)
        )
        self.slot_incs = _readonly(
            np.frombuffer(mv, dtype=np.uint32, count=n, offset=inc_off)
        )
        self.compaction_group = None

    def valid_slots(self) -> np.ndarray:
        return np.nonzero((self.directory & slotcodec.STATE_MASK) == VALID)[0]

    def slot_of_address(self, address: int) -> int:
        return self.space.offset_of(address)


class _AttachedStringBlock:
    """Minimal attached view of a string block (heap reads only)."""

    __slots__ = ("space", "block_id", "base_address", "segment", "buf")

    def __init__(self, space, block_id: int, segment) -> None:
        self.space = space
        self.block_id = block_id
        self.base_address = space.address_of(block_id)
        self.segment = segment
        self.buf = segment.buf


def _attach_block(manager, block_id: int, kind: str, segment):
    space = manager.space
    if kind == _KIND_COLUMNAR:
        return _AttachedColumnarBlock(space, block_id, segment, manager)
    if kind == _KIND_ROW:
        return _AttachedRowBlock(space, block_id, segment)
    return _AttachedStringBlock(space, block_id, segment)


def _make_attach_miss(manager, space_map: Dict[int, tuple], cache):
    """Build the worker's ``AddressSpace.attach_miss`` hook for one query.

    The cache outlives the query: attached blocks stay adopted for the
    worker's lifetime, which is safe because any allocation, free or
    residency change in the parent respawns the workers before the next
    process query.
    """

    def attach_miss(block_id: int):
        block = cache.get(block_id)
        if block is not None:
            return block
        entry = space_map.get(block_id)
        if entry is None:
            return None
        if len(entry) == 3:
            # Cold block: no segment name to attach — map the block's
            # region of the tier file through the worker's own mapping
            # (the TierStore fd is inherited across the fork; offsets
            # are the wire format).
            __, kind, offset = entry
            store = manager.space.buffers.store
            if store is None:
                return None
            segment = store.map_region(offset, manager.space.block_size)
        else:
            name, kind = entry
            segment = manager.space.buffers.attach(name)
        block = _attach_block(manager, block_id, kind, segment)
        manager.space.adopt(block_id, block)
        cache[block_id] = block
        return block

    return attach_miss


def _space_map(manager) -> Dict[int, tuple]:
    """``{block_id: (segment_name, kind)}`` for every live block.

    Cold blocks (no attachable segment name) travel by tier-file
    coordinates instead: ``(None, kind, tier_offset)``.
    """
    out: Dict[int, tuple] = {}
    for block in manager.space.live_blocks():
        segment = getattr(block, "segment", None)
        name = getattr(segment, "name", None)
        if getattr(block, "columns", None) is not None:
            kind = _KIND_COLUMNAR
        elif hasattr(block, "directory"):
            kind = _KIND_ROW
        else:
            kind = _KIND_STRING
        if name is None:
            if (
                getattr(block, "residency", None) == "cold"
                and block.tier_offset >= 0
            ):
                out[block.block_id] = (None, kind, block.tier_offset)
            continue
        out[block.block_id] = (name, kind)
    return out


# ----------------------------------------------------------------------
# Worker main loop (runs in the forked child, exits via os._exit only)
# ----------------------------------------------------------------------


def _worker_main(manager, slots: np.ndarray, index: int, rfd: int, wfd: int):
    space = manager.space
    row = index * _SLOT_ROW
    attach_cache: dict = {}
    pid = os.getpid()
    while True:
        frame = _recv_frame(rfd)
        if frame is None or frame[0] == "quit":
            os._exit(0)
        if frame[0] != "query":  # pragma: no cover - protocol guard
            continue
        __, qid, epoch, wire = frame
        # Publish the reader section before touching any block: epoch
        # first, flag last, so the parent's advancement checks never see
        # a pinned flag with a stale epoch.
        slots[row + 1] = epoch
        slots[row + 2] = pid
        slots[row + 3] = qid
        slots[row] = 1
        try:
            space.attach_miss = _make_attach_miss(
                manager, wire["space_map"], attach_cache
            )
            plan = plansnap.decode_plan(manager, wire["plan"])
            probes = plan.make_probes()
            for seq, block_ids in wire["units"]:
                if _san.SANITIZER is not None:
                    # Fault-injection point: crash_at("exec.worker") makes
                    # this worker die exactly like a SIGKILLed process.
                    try:
                        _san.SANITIZER.event(
                            "exec.worker", pid=pid, qid=qid, seq=seq
                        )
                    except BaseException:
                        os.kill(pid, signal.SIGKILL)
                acc = plan.make_accumulator()
                for block_id in block_ids:
                    block = space.block_by_id(block_id)
                    plan.process_block(block, probes, acc)
                _send_frame(
                    wfd,
                    (
                        "partial",
                        qid,
                        seq,
                        plansnap.encode_accumulator(manager, acc),
                    ),
                )
            _send_frame(wfd, ("done", qid))
        except BaseException as exc:
            try:
                _send_frame(wfd, ("error", qid, f"{type(exc).__name__}: {exc}"))
            except OSError:
                os._exit(1)
        finally:
            slots[row] = 0


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------


class ProcessScanPool:
    """A pool of forked scan workers attached to one manager's segments.

    Create with ``MemoryManager(shm=True)`` only; heap-backed spaces have
    nothing a worker process could attach.  The pool is registered on the
    manager (``manager.exec_pool``) and shut down by ``manager.close()``.
    Workers are spawned lazily on the first query and respawned whenever
    the mutation fingerprint moves, so an idle pool costs nothing.
    """

    def __init__(self, manager, workers: int) -> None:
        if not getattr(manager.space.buffers, "shared", False):
            raise ValueError(
                "process executor requires shared-memory buffers; "
                "create the manager with shm=True (serve --shm)"
            )
        self.manager = manager
        self.workers = max(1, int(workers))
        self._pid = os.getpid()
        self._busy = threading.Lock()
        self._qid = 0
        self._closed = False
        self._procs: List[dict] = []
        self._spawn_fp: Optional[tuple] = None
        self._slot_segment = manager.space.buffers.create(
            self.workers * _SLOT_ROW * 8
        )
        self._slots: Optional[np.ndarray] = np.frombuffer(
            self._slot_segment.buf, dtype=np.int64
        )
        self._slots[:] = 0
        manager.epochs.register_external(self._external_pins)
        atexit.register(self.shutdown)

    # -- epoch protocol ------------------------------------------------

    def _external_pins(self):
        """Remote reader sections for the epoch manager (lock-free read)."""
        slots = self._slots
        if slots is None:
            return []
        pairs = []
        for rec in self._procs:
            if not rec["alive"]:
                continue
            base = rec["index"] * _SLOT_ROW
            if int(slots[base]):
                pairs.append((True, int(slots[base + 1])))
        return pairs

    # -- consistency fingerprint ---------------------------------------

    def fingerprint(self) -> tuple:
        """Coarse mutation stamp of everything workers snapshot at fork.

        Any object allocation or free, new context, string-dictionary
        rebinding or string-heap growth invalidates the workers' COW
        view; compaction (pure relocation) intentionally does not.
        Residency changes do: a fault rebinds the block to a *new* hot
        segment the old workers never mapped, and a demotion swaps in a
        tier mapping — either way the space map the workers cached is
        stale, so tier fault/eviction counters are part of the stamp.
        """
        manager = self.manager
        versions = 0
        for coll in getattr(manager, "collections", {}).values():
            strdict = getattr(coll, "strdict", None)
            if strdict is not None:
                versions += strdict.version
        extra = manager.stats.extra
        return (
            manager.stats.allocations,
            manager.stats.frees,
            len(manager._contexts),
            versions,
            manager.strings.block_count,
            extra.get("tier_faults", 0),
            extra.get("tier_evictions", 0),
        )

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self) -> None:
        self._spawn_fp = self.fingerprint()
        for index in range(self.workers):
            p2c_r, p2c_w = os.pipe()
            c2p_r, c2p_w = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Child: drop every parent-side fd (ours and the earlier
                # siblings' — holding a sibling's pipe open would mask
                # its EOF-on-death signal to the parent).
                os.close(p2c_w)
                os.close(c2p_r)
                for rec in self._procs:
                    try:
                        os.close(rec["rfd"])
                        os.close(rec["wfd"])
                    except OSError:  # pragma: no cover
                        pass
                try:
                    _worker_main(
                        self.manager, self._slots, index, p2c_r, c2p_w
                    )
                except BaseException:  # pragma: no cover - last resort
                    pass
                os._exit(1)
            os.close(p2c_r)
            os.close(c2p_w)
            lease = self.manager.epochs.create_lease(f"exec-worker-{pid}")
            self._procs.append(
                {
                    "pid": pid,
                    "index": index,
                    "rfd": c2p_r,
                    "wfd": p2c_w,
                    "lease": lease,
                    "alive": True,
                    "buf": b"",
                }
            )

    def _stop_workers(self) -> None:
        for rec in self._procs:
            if not rec["alive"]:
                continue
            rec["alive"] = False
            try:
                _send_frame(rec["wfd"], ("quit",))
            except OSError:
                pass
            for fd_key in ("rfd", "wfd"):
                try:
                    os.close(rec[fd_key])
                except OSError:
                    pass
            try:
                os.waitpid(rec["pid"], 0)
            except ChildProcessError:
                pass
            rec["lease"].release()
            if self._slots is not None:
                base = rec["index"] * _SLOT_ROW
                self._slots[base : base + _SLOT_ROW] = 0
        self._procs = []

    def _ensure_workers(self) -> bool:
        """Workers alive and consistent with the current data? (Re)spawn."""
        alive = sum(1 for rec in self._procs if rec["alive"])
        if (
            alive == self.workers
            and self._spawn_fp == self.fingerprint()
        ):
            return True
        had_procs = bool(self._procs)
        self._stop_workers()
        self._spawn()
        if had_procs:
            extra = self.manager.stats.extra
            extra["exec_worker_respawns"] = (
                extra.get("exec_worker_respawns", 0) + 1
            )
        return True

    def _handle_death(self, rec: dict) -> None:
        """A worker died mid-query: expire its pin, reap, drop its fds."""
        rec["alive"] = False
        for fd_key in ("rfd", "wfd"):
            try:
                os.close(rec[fd_key])
            except OSError:
                pass
        try:
            os.waitpid(rec["pid"], 0)
        except ChildProcessError:
            pass
        # Lease-watchdog machinery: revocation expires the dead worker's
        # pin; its shared slot row is cleared so the external source stops
        # reporting a reader section that no longer exists.
        rec["lease"].revoke()
        if self._slots is not None:
            base = rec["index"] * _SLOT_ROW
            self._slots[base : base + _SLOT_ROW] = 0

    def shutdown(self) -> None:
        """Stop all workers and release the slot segment (idempotent)."""
        if self._closed or os.getpid() != self._pid:
            return
        self._closed = True
        self._stop_workers()
        self.manager.epochs.unregister_external(self._external_pins)
        self._slots = None
        self._slot_segment.release()

    # -- query execution ------------------------------------------------

    def alive_workers(self) -> int:
        return sum(1 for rec in self._procs if rec["alive"])

    def run(self, plan) -> Optional[tuple]:
        """Execute *plan* on the pool; ``None`` means "use threads".

        Single-flight: a second concurrent query falls back to the
        thread executor instead of queueing behind the pipes.
        """
        if self._closed or plan.terminal is None:
            # Enumeration results carry live Refs, which cannot cross a
            # process boundary; only Select/GroupBy scans are eligible.
            return None
        if not self._busy.acquire(blocking=False):
            return None
        try:
            pager = getattr(self.manager, "pager", None)
            if pager is None:
                self._ensure_workers()
                return self._run_locked(plan)
            # Defer demotions for the whole fan-out: hot segment names in
            # the space map and cold tier regions must stay stable while
            # workers hold mappings of them.
            with pager.hold():
                self._ensure_workers()
                return self._run_locked(plan)
        finally:
            self._busy.release()

    def _run_locked(self, plan) -> Optional[tuple]:
        manager = self.manager
        epochs = manager.epochs
        start_fp = self.fingerprint()
        self._qid += 1
        qid = self._qid
        probes = plan.make_probes()

        local_partials: List[tuple] = []
        pruned = scanned = redispatched = 0
        failed = False
        participants: List[dict] = []
        entered: List = []

        epoch = epochs.enter_critical_section()
        try:
            context = plan.source.context
            workers = [rec for rec in self._procs if rec["alive"]]
            # Adaptive morsel width (planner feedback), same as the
            # thread executor; None falls back to the static split.
            morsel_size = getattr(plan, "morsel_hint", None)
            if morsel_size is None:
                morsel_size = -(
                    -context.block_count()
                    // (len(workers) * MORSELS_PER_WORKER)
                )
            dispatcher = MorselDispatcher(context, morsel_size)

            # Drain the dispatcher on the parent: prune with authoritative
            # zone maps, ship plain-block morsels, resolve compaction
            # groups locally (pre-state pinning is parent-side work).
            units: List[Tuple[int, List[int]]] = []
            while True:
                unit = dispatcher.next_unit()
                if unit is None:
                    break
                kind, seq, payload = unit
                if kind == "blocks":
                    admitted = []
                    for block in payload:
                        if _san.SANITIZER is not None:
                            _san.SANITIZER.event("scan.block", block=block)
                        if plan.admits(block):
                            scanned += 1
                            admitted.append(block.block_id)
                        else:
                            pruned += 1
                    if admitted:
                        units.append((seq, admitted))
                    continue
                gkind, members = resolve_group(
                    manager, payload, defer_ok=(kind == "group")
                )
                if gkind == GROUP_DEFERRED:
                    dispatcher.defer(payload)
                    continue
                acc = plan.make_accumulator()
                try:
                    for block in members:
                        if dispatcher.claim_emit(block):
                            if _san.SANITIZER is not None:
                                _san.SANITIZER.event("scan.block", block=block)
                            if not plan.admits(block):
                                pruned += 1
                                continue
                            scanned += 1
                            plan.process_block(block, probes, acc)
                finally:
                    if gkind == GROUP_PINNED:
                        payload.unpin_prestate()
                local_partials.append((seq, acc))

            if units:
                # Static striping: morsel i goes to worker i % n.  Every
                # assignment is remembered so a dead worker's unacked
                # units can be re-executed locally.
                assignments: Dict[int, Dict[int, List[int]]] = {}
                for i, (seq, block_ids) in enumerate(units):
                    rec = workers[i % len(workers)]
                    assignments.setdefault(rec["pid"], {})[seq] = block_ids

                wire = {
                    "plan": plansnap.encode_plan(manager, plan),
                    "space_map": _space_map(manager),
                }
                for rec in workers:
                    assigned = assignments.get(rec["pid"])
                    if not assigned:
                        continue
                    # Belt over the slot-segment braces: the parent holds
                    # a lease per participating worker, expired through
                    # the existing watchdog path if the worker dies.
                    rec["lease"].enter()
                    entered.append(rec["lease"])
                    try:
                        _send_frame(
                            rec["wfd"],
                            (
                                "query",
                                qid,
                                epoch,
                                dict(
                                    wire,
                                    units=sorted(assigned.items()),
                                ),
                            ),
                        )
                        participants.append(rec)
                    except OSError:
                        # Died before we could even send: everything it
                        # owned is re-executed locally below.
                        self._handle_death(rec)

                received: Dict[int, dict] = {
                    rec["pid"]: {} for rec in participants
                }
                done = {rec["pid"]: False for rec in participants}
                while participants and not all(
                    done[rec["pid"]] for rec in participants
                ):
                    readable = [
                        rec["rfd"]
                        for rec in participants
                        if not done[rec["pid"]]
                    ]
                    ready, __, __ = select.select(readable, [], [], 1.0)
                    if not ready:
                        # Liveness poll: catch a worker that died without
                        # the pipe EOF reaching us yet.
                        for rec in list(participants):
                            if done[rec["pid"]]:
                                continue
                            pid, __status = os.waitpid(
                                rec["pid"], os.WNOHANG
                            )
                            if pid:
                                done[rec["pid"]] = True
                                self._reap_mid_query(
                                    rec, assignments, received, reaped=True
                                )
                        continue
                    for fd in ready:
                        rec = next(
                            r for r in participants if r["rfd"] == fd
                        )
                        data = os.read(fd, 1 << 16)
                        if not data:
                            done[rec["pid"]] = True
                            self._reap_mid_query(rec, assignments, received)
                            continue
                        rec["buf"] += data
                        for frame in _parse_frames(rec):
                            tag = frame[0]
                            if tag == "partial" and frame[1] == qid:
                                received[rec["pid"]][frame[2]] = frame[3]
                            elif tag == "done" and frame[1] == qid:
                                done[rec["pid"]] = True
                            elif tag == "error" and frame[1] == qid:
                                failed = True
                                done[rec["pid"]] = True

                if failed:
                    # A worker *raised* (as opposed to died): the plan or
                    # data tripped something the process path cannot
                    # handle; trust nothing from this round.
                    return None

                # Fold worker partials; re-execute anything a dead (or
                # never-reached) worker never acknowledged.  Iterates the
                # assignment map, not `participants`, so units whose very
                # send failed are also recovered.
                for rec in workers:
                    assigned = assignments.get(rec["pid"])
                    if not assigned:
                        continue
                    got = received.get(rec["pid"], {})
                    for seq, acc_wire in got.items():
                        local_partials.append(
                            (
                                seq,
                                plansnap.decode_accumulator(
                                    manager, plan.terminal, acc_wire
                                ),
                            )
                        )
                    if rec["alive"]:
                        continue
                    for seq, block_ids in assigned.items():
                        if seq in got:
                            continue
                        redispatched += 1
                        acc = plan.make_accumulator()
                        for block_id in block_ids:
                            block = manager.space.block_by_id(block_id)
                            plan.process_block(block, probes, acc)
                        local_partials.append((seq, acc))

            extra = manager.stats.extra
            extra["exec_morsels_dispatched"] = (
                extra.get("exec_morsels_dispatched", 0) + len(units)
            )
            if redispatched:
                extra["exec_morsels_redispatched"] = (
                    extra.get("exec_morsels_redispatched", 0) + redispatched
                )
        finally:
            for lease in entered:
                lease.exit()  # no-op for leases revoked by a death
            epochs.exit_critical_section()

        if self.fingerprint() != start_fp:
            # Data mutated mid-query: the workers' COW snapshot may have
            # diverged from the live state; discard and rerun on threads.
            return None

        local_partials.sort(key=lambda pair: pair[0])
        acc = plan.make_accumulator()
        for __, partial in local_partials:
            acc.merge(partial)
        return acc, pruned, scanned

    def _reap_mid_query(self, rec, assignments, received, reaped=False):
        if reaped:
            # waitpid already collected it; skip the second wait.
            rec["alive"] = False
            for fd_key in ("rfd", "wfd"):
                try:
                    os.close(rec[fd_key])
                except OSError:
                    pass
            rec["lease"].revoke()
            if self._slots is not None:
                base = rec["index"] * _SLOT_ROW
                self._slots[base : base + _SLOT_ROW] = 0
        else:
            self._handle_death(rec)


def run_process_scan(plan, pool: ProcessScanPool) -> Optional[tuple]:
    """Scatter *plan* over the process pool; ``None`` = thread fallback.

    Return shape matches ``columnar_exec._run_serial``:
    ``(accumulator, pruned_blocks, scanned_blocks)``.
    """
    if pool is None or plan.manager is not pool.manager:
        return None
    return pool.run(plan)
