"""Exception types for the SMC runtime.

The paper (EDBT 2017, section 2) specifies that dereferencing a reference to
an object that has been removed from its host collection raises a
null-reference exception.  We mirror the .NET exception names with Python
naming conventions.
"""

from __future__ import annotations


class SmcError(Exception):
    """Base class for all errors raised by the SMC runtime."""


class NullReferenceError(SmcError):
    """Raised when dereferencing a reference whose object has been freed.

    This is the Python analogue of the ``NullReferenceException`` the paper's
    runtime throws when the incarnation number stored in a reference no
    longer matches the incarnation number of its indirection-table entry
    (section 3.1).
    """


class TabularTypeError(SmcError, TypeError):
    """Raised when a class violates the static rules for tabular types.

    Section 2 of the paper requires that tabular classes only reference
    other tabular classes, are not defined on base classes or interfaces,
    and have a fixed size and memory layout.
    """


class MemoryExhaustedError(SmcError, MemoryError):
    """Raised when the address space cannot host another block."""


class IncarnationOverflowError(SmcError):
    """Raised internally when a slot's 29-bit incarnation counter overflows.

    The paper (section 3.1) stops reusing such memory slots; callers treat
    this as "retire the slot".
    """


class CollectionClosedError(SmcError):
    """Raised when operating on a collection after its manager was closed."""


class ConcurrencyProtocolError(SmcError):
    """Raised when the epoch/compaction protocol is used incorrectly.

    Examples: freeing an object outside any registered thread, exiting a
    critical section that was never entered, or starting a compaction while
    one is already running.
    """


class ProtocolViolation(SmcError):
    """Raised by the protocol sanitizer when a core invariant is broken.

    Unlike :class:`ConcurrencyProtocolError` (API misuse surfaced by the
    runtime itself), a protocol violation means the *memory-reclamation
    protocol state* is inconsistent — a slot left limbo before its safety
    epoch, an incarnation counter regressed, a FROZEN bit appeared on a
    FREE slot, and so on.  Carries the violated invariant's name and the
    tail of the sanitizer's event trace for post-mortem debugging.
    """

    def __init__(self, invariant: str, message: str, trace=()) -> None:
        self.invariant = invariant
        self.trace = list(trace)
        detail = message
        if self.trace:
            tail = "\n".join(f"    {line}" for line in self.trace[-20:])
            detail = f"{message}\n  event trace (most recent last):\n{tail}"
        super().__init__(f"[{invariant}] {detail}")


class InjectedFaultError(SmcError):
    """Raised by the sanitizer's fault-injection harness.

    Marks deliberately injected failures (e.g. a simulated compactor crash
    mid-relocation) so tests can distinguish them from genuine errors.
    """
