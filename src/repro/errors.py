"""Exception types for the SMC runtime.

The paper (EDBT 2017, section 2) specifies that dereferencing a reference to
an object that has been removed from its host collection raises a
null-reference exception.  We mirror the .NET exception names with Python
naming conventions.
"""

from __future__ import annotations


class SmcError(Exception):
    """Base class for all errors raised by the SMC runtime."""


class NullReferenceError(SmcError):
    """Raised when dereferencing a reference whose object has been freed.

    This is the Python analogue of the ``NullReferenceException`` the paper's
    runtime throws when the incarnation number stored in a reference no
    longer matches the incarnation number of its indirection-table entry
    (section 3.1).
    """


class TabularTypeError(SmcError, TypeError):
    """Raised when a class violates the static rules for tabular types.

    Section 2 of the paper requires that tabular classes only reference
    other tabular classes, are not defined on base classes or interfaces,
    and have a fixed size and memory layout.
    """


class MemoryExhaustedError(SmcError, MemoryError):
    """Raised when the address space cannot host another block."""


class IncarnationOverflowError(SmcError):
    """Raised internally when a slot's 29-bit incarnation counter overflows.

    The paper (section 3.1) stops reusing such memory slots; callers treat
    this as "retire the slot".
    """


class CollectionClosedError(SmcError):
    """Raised when operating on a collection after its manager was closed."""


class ConcurrencyProtocolError(SmcError):
    """Raised when the epoch/compaction protocol is used incorrectly.

    Examples: freeing an object outside any registered thread, exiting a
    critical section that was never entered, or starting a compaction while
    one is already running.
    """
